#include "src/pfg/dot.h"

#include "src/ir/printer.h"

namespace cssame::pfg {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\l";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string toDot(const Graph& graph, DotOptions opts) {
  const ir::SymbolTable& syms = graph.program().symbols;
  std::string out = "digraph PFG {\n  node [shape=box, fontname=\"monospace\"];\n";

  for (const Node& n : graph.nodes()) {
    std::string label = graph.describe(n.id);
    if (opts.showStmts && n.kind == NodeKind::Block) {
      label = "#" + std::to_string(n.id.value());
      for (const ir::Stmt* s : n.stmts)
        label += "\n" + ir::printStmtBrief(*s, syms);
      if (n.terminator != nullptr)
        label += "\nbranch " + ir::printExpr(*n.terminator->expr, syms);
    }
    out += "  n" + std::to_string(n.id.value()) + " [label=\"" +
           escape(label) + "\"";
    if (n.kind == NodeKind::Lock || n.kind == NodeKind::Unlock)
      out += ", style=filled, fillcolor=lightyellow";
    if (n.kind == NodeKind::Cobegin || n.kind == NodeKind::Coend)
      out += ", shape=trapezium";
    out += "];\n";
  }

  auto edge = [&](NodeId a, NodeId b, const char* attrs) {
    out += "  n" + std::to_string(a.value()) + " -> n" +
           std::to_string(b.value()) + attrs + ";\n";
  };

  for (const Node& n : graph.nodes())
    for (NodeId s : n.succs) edge(n.id, s, "");

  if (opts.showConflictEdges) {
    for (const ConflictEdge& c : graph.conflicts) {
      std::string attrs = " [style=dashed, color=red, label=\"D" +
                          std::string(c.toIsDef ? "D:" : "U:") +
                          syms.nameOf(c.var) + "\"]";
      edge(c.from, c.to, attrs.c_str());
    }
  }
  if (opts.showMutexEdges) {
    for (const MutexEdge& m : graph.mutexEdges)
      edge(m.lockNode, m.unlockNode,
           " [style=dotted, dir=none, color=blue]");
  }
  if (opts.showDsyncEdges) {
    for (const DsyncEdge& d : graph.dsyncEdges)
      edge(d.setNode, d.waitNode, " [style=bold, color=darkgreen]");
  }

  out += "}\n";
  return out;
}

}  // namespace cssame::pfg
