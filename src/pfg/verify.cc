#include "src/pfg/verify.h"

#include <algorithm>

namespace cssame::pfg {

std::vector<std::string> verifyGraph(const Graph& graph) {
  std::vector<std::string> problems;
  auto problem = [&](NodeId n, const std::string& what) {
    problems.push_back("node #" + std::to_string(n.value()) + " (" +
                       nodeKindName(graph.node(n).kind) + "): " + what);
  };

  std::size_t entries = 0, exits = 0;
  for (const Node& n : graph.nodes()) {
    // Edge mirroring.
    for (NodeId s : n.succs) {
      const auto& preds = graph.node(s).preds;
      if (std::count(preds.begin(), preds.end(), n.id) <
          std::count(n.succs.begin(), n.succs.end(), s))
        problem(n.id, "successor edge without matching predecessor");
    }

    switch (n.kind) {
      case NodeKind::Entry:
        ++entries;
        if (!n.preds.empty()) problem(n.id, "entry with predecessors");
        if (n.succs.size() != 1) problem(n.id, "entry without unique succ");
        break;
      case NodeKind::Exit:
        ++exits;
        if (!n.succs.empty()) problem(n.id, "exit with successors");
        break;
      case NodeKind::Block: {
        for (const ir::Stmt* s : n.stmts) {
          if (s->kind != ir::StmtKind::Assign &&
              s->kind != ir::StmtKind::CallStmt &&
              s->kind != ir::StmtKind::Print &&
              s->kind != ir::StmtKind::Assert)
            problem(n.id, "non-simple statement inside block");
          if (graph.nodeOf(s) != n.id)
            problem(n.id, "statement not mapped back to its block");
        }
        if (n.terminator != nullptr) {
          if (n.terminator->kind != ir::StmtKind::If &&
              n.terminator->kind != ir::StmtKind::While)
            problem(n.id, "terminator is not a branch statement");
          if (n.succs.size() != 2)
            problem(n.id, "branch block without exactly two successors");
        } else if (n.succs.size() != 1) {
          problem(n.id, "fallthrough block without unique successor");
        }
        break;
      }
      case NodeKind::Lock:
      case NodeKind::Unlock:
      case NodeKind::Set:
      case NodeKind::Wait:
      case NodeKind::Barrier:
      case NodeKind::Fence: {
        if (n.syncStmt == nullptr) {
          problem(n.id, "sync node without statement");
          break;
        }
        if (graph.nodeOf(n.syncStmt) != n.id)
          problem(n.id, "sync statement not mapped to its node");
        if (n.succs.size() != 1)
          problem(n.id, "sync node without unique successor");
        break;
      }
      case NodeKind::Cobegin:
        if (n.syncStmt == nullptr ||
            n.syncStmt->kind != ir::StmtKind::Cobegin)
          problem(n.id, "cobegin node without cobegin statement");
        else if (n.succs.size() != n.syncStmt->threads.size())
          problem(n.id, "cobegin fan-out does not match thread count");
        break;
      case NodeKind::Coend:
        if (n.succs.size() != 1)
          problem(n.id, "coend without unique successor");
        break;
    }
  }
  if (entries != 1) problems.push_back("graph without unique entry");
  if (exits != 1) problems.push_back("graph without unique exit");

  const ir::SymbolTable& syms = graph.program().symbols;
  for (const ConflictEdge& e : graph.conflicts) {
    if (e.from == e.to)
      problems.push_back("conflict self-edge on node #" +
                         std::to_string(e.from.value()));
    // Conflict edges are keyed by alias-class representative; the class
    // conflicts as soon as any member is shared.
    if (!graph.aliases.classShared(e.var, syms))
      problems.push_back("conflict edge over non-shared variable '" +
                         syms.nameOf(e.var) + "'");
  }
  return problems;
}

}  // namespace cssame::pfg
