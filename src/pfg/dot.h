// DOT (Graphviz) export of a PFG, standing in for the paper's VCG output.
#pragma once

#include <string>

#include "src/pfg/graph.h"

namespace cssame::pfg {

struct DotOptions {
  bool showConflictEdges = true;  ///< dashed (paper Figure 2 legend)
  bool showMutexEdges = true;     ///< dotted
  bool showDsyncEdges = true;     ///< bold
  bool showStmts = true;          ///< statement text inside block nodes
};

[[nodiscard]] std::string toDot(const Graph& graph, DotOptions opts = {});

}  // namespace cssame::pfg
