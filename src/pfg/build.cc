#include "src/pfg/build.h"

namespace cssame::pfg {

const char* nodeKindName(NodeKind k) {
  switch (k) {
    case NodeKind::Entry: return "entry";
    case NodeKind::Exit: return "exit";
    case NodeKind::Block: return "block";
    case NodeKind::Cobegin: return "cobegin";
    case NodeKind::Coend: return "coend";
    case NodeKind::Lock: return "lock";
    case NodeKind::Unlock: return "unlock";
    case NodeKind::Set: return "set";
    case NodeKind::Wait: return "wait";
    case NodeKind::Barrier: return "barrier";
    case NodeKind::Fence: return "fence";
  }
  return "?";
}

namespace {

class Lowerer {
 public:
  explicit Lowerer(ir::Program& prog) : graph_(prog) {}

  Graph run() {
    graph_.entry = graph_.newNode(NodeKind::Entry);
    graph_.exit = graph_.newNode(NodeKind::Exit);
    NodeId cur = newBlock();
    graph_.addEdge(graph_.entry, cur);
    cur = lowerList(graph_.program().body, cur);
    graph_.addEdge(cur, graph_.exit);
    return std::move(graph_);
  }

 private:
  NodeId newBlock() { return graph_.newNode(NodeKind::Block, path_); }

  /// Returns a Block node new statements can be appended to: `cur` itself
  /// if it is an unterminated Block, otherwise a fresh successor Block.
  NodeId ensureBlock(NodeId cur) {
    Node& n = graph_.node(cur);
    if (n.kind == NodeKind::Block && n.terminator == nullptr) return cur;
    const NodeId b = newBlock();
    graph_.addEdge(cur, b);
    return b;
  }

  NodeId lowerSyncNode(NodeId cur, NodeKind kind, ir::Stmt* s) {
    const NodeId n = graph_.newNode(kind, path_);
    graph_.node(n).syncStmt = s;
    graph_.mapStmt(s, n);
    graph_.addEdge(cur, n);
    return n;
  }

  NodeId lowerList(ir::StmtList& list, NodeId cur) {
    for (auto& sp : list) cur = lowerStmt(sp.get(), cur);
    return cur;
  }

  NodeId lowerStmt(ir::Stmt* s, NodeId cur) {
    using ir::StmtKind;
    switch (s->kind) {
      case StmtKind::Assign:
      case StmtKind::CallStmt:
      case StmtKind::Print:
      case StmtKind::Assert: {
        cur = ensureBlock(cur);
        graph_.node(cur).stmts.push_back(s);
        graph_.mapStmt(s, cur);
        return cur;
      }
      case StmtKind::Lock:
        return lowerSyncNode(cur, NodeKind::Lock, s);
      case StmtKind::Unlock:
        return lowerSyncNode(cur, NodeKind::Unlock, s);
      case StmtKind::Set:
        return lowerSyncNode(cur, NodeKind::Set, s);
      case StmtKind::Wait:
        return lowerSyncNode(cur, NodeKind::Wait, s);
      case StmtKind::Barrier:
        return lowerSyncNode(cur, NodeKind::Barrier, s);
      case StmtKind::Fence:
        return lowerSyncNode(cur, NodeKind::Fence, s);
      case StmtKind::If: {
        cur = ensureBlock(cur);
        graph_.node(cur).terminator = s;
        graph_.mapStmt(s, cur);
        // succs[0] = then entry, succs[1] = else entry / join.
        const NodeId thenEntry = newBlock();
        graph_.addEdge(cur, thenEntry);
        const NodeId thenExit = lowerList(s->thenBody, thenEntry);
        const NodeId join = newBlock();
        if (s->elseBody.empty()) {
          graph_.addEdge(cur, join);
        } else {
          const NodeId elseEntry = newBlock();
          graph_.addEdge(cur, elseEntry);
          const NodeId elseExit = lowerList(s->elseBody, elseEntry);
          graph_.addEdge(elseExit, join);
        }
        graph_.addEdge(thenExit, join);
        return join;
      }
      case StmtKind::While: {
        // Header evaluates the condition: succs[0] = body, succs[1] = exit.
        const NodeId header = newBlock();
        graph_.addEdge(cur, header);
        graph_.node(header).terminator = s;
        graph_.mapStmt(s, header);
        const NodeId bodyEntry = newBlock();
        graph_.addEdge(header, bodyEntry);
        const NodeId bodyExit = lowerList(s->thenBody, bodyEntry);
        graph_.addEdge(bodyExit, header);
        const NodeId exitB = newBlock();
        graph_.addEdge(header, exitB);
        return exitB;
      }
      case StmtKind::Cobegin: {
        const NodeId fork = graph_.newNode(NodeKind::Cobegin, path_);
        graph_.node(fork).syncStmt = s;
        graph_.mapStmt(s, fork);
        graph_.addEdge(cur, fork);
        const NodeId join = graph_.newNode(NodeKind::Coend, path_);
        graph_.node(join).syncStmt = s;
        for (std::uint32_t ti = 0; ti < s->threads.size(); ++ti) {
          path_.push_back(ThreadPathEntry{s->id, ti});
          const NodeId tEntry = newBlock();
          graph_.addEdge(fork, tEntry);
          const NodeId tExit = lowerList(s->threads[ti].body, tEntry);
          graph_.addEdge(tExit, join);
          path_.pop_back();
        }
        return join;
      }
    }
    return cur;
  }

  Graph graph_;
  ThreadPath path_;
};

}  // namespace

Graph buildPfg(ir::Program& program) { return Lowerer(program).run(); }

std::string Graph::describe(NodeId id) const {
  const Node& n = node(id);
  std::string out = "#" + std::to_string(id.value()) + " " +
                    nodeKindName(n.kind);
  const ir::SymbolTable& syms = program_->symbols;
  if (n.isSync() && n.syncStmt != nullptr)
    out += "(" + syms.nameOf(n.syncStmt->sync) + ")";
  if (n.kind == NodeKind::Block) {
    out += " [" + std::to_string(n.stmts.size()) + " stmts" +
           (n.terminator != nullptr ? ", branch" : "") + "]";
  }
  return out;
}

}  // namespace cssame::pfg
