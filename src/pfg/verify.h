// Structural PFG invariants, checked in tests after construction and
// whenever the graph is rebuilt following a transformation.
#pragma once

#include <string>
#include <vector>

#include "src/pfg/graph.h"

namespace cssame::pfg {

/// Returns human-readable violations; empty means the graph is well
/// formed:
///  - unique Entry (no preds) and Exit (no succs), edges mirrored,
///  - Block nodes hold only simple statements; terminators are If/While
///    and imply exactly two successors (taken / not taken),
///  - Lock/Unlock/Set/Wait/Barrier nodes carry their statement and have
///    exactly one successor,
///  - Cobegin fans out to one entry per thread; Coend joins them,
///  - every statement in a node maps back to it via nodeOf(),
///  - conflict edges connect distinct nodes over shared variables.
[[nodiscard]] std::vector<std::string> verifyGraph(const Graph& graph);

}  // namespace cssame::pfg
