#include "src/mutex/deadlock.h"

#include <algorithm>
#include <map>
#include <set>

namespace cssame::mutex {

namespace {

/// One nested acquisition: a Lock(inner) node inside a body of `outer`.
struct Acquisition {
  SymbolId outer;
  SymbolId inner;
  NodeId site;  ///< the inner Lock node
};

}  // namespace

DeadlockReport detectDeadlocks(const pfg::Graph& graph,
                               const analysis::Mhp& mhp,
                               const MutexStructures& structures,
                               DiagEngine& diag) {
  DeadlockReport report;
  const ir::SymbolTable& syms = graph.program().symbols;

  // Collect nested acquisitions from well-formed bodies.
  std::vector<Acquisition> acquisitions;
  for (const pfg::Node& n : graph.nodes()) {
    if (n.kind != pfg::NodeKind::Lock) continue;
    const SymbolId inner = n.syncStmt->sync;
    for (const MutexBody& b : structures.bodies()) {
      if (!b.wellFormed || b.lockVar == inner) continue;
      if (b.members.test(n.id.index()))
        acquisitions.push_back(Acquisition{b.lockVar, inner, n.id});
    }
  }

  // ABBA: opposite orders at sites that may run concurrently.
  std::set<std::pair<SymbolId, SymbolId>> reported;
  for (const Acquisition& ab : acquisitions) {
    for (const Acquisition& ba : acquisitions) {
      if (ab.outer != ba.inner || ab.inner != ba.outer) continue;
      if (!mhp.mayHappenInParallel(ab.site, ba.site)) continue;
      const auto key = std::minmax(ab.outer, ab.inner);
      if (!reported.insert({key.first, key.second}).second) continue;
      ++report.abbaPairs;
      diag.warn(DiagCode::PotentialDeadlock,
                graph.node(ab.site).syncStmt->loc,
                "potential deadlock: locks '" + syms.nameOf(ab.outer) +
                    "' and '" + syms.nameOf(ab.inner) +
                    "' are acquired in opposite orders by concurrent "
                    "threads");
    }
  }

  // Longer cycles in the lock-order digraph (conservative: no pairwise
  // concurrency check). DFS over unique edges.
  std::map<SymbolId, std::set<SymbolId>> order;
  for (const Acquisition& a : acquisitions) order[a.outer].insert(a.inner);

  std::set<SymbolId> visiting, done;
  std::size_t cycles = 0;
  auto dfs = [&](SymbolId v, auto&& self) -> void {
    visiting.insert(v);
    auto it = order.find(v);
    if (it != order.end()) {
      for (SymbolId next : it->second) {
        if (visiting.contains(next)) {
          ++cycles;
          continue;
        }
        if (!done.contains(next)) self(next, self);
      }
    }
    visiting.erase(v);
    done.insert(v);
  };
  for (const auto& [v, _] : order)
    if (!done.contains(v)) dfs(v, dfs);

  // Every ABBA pair is also a 2-cycle; report only the surplus.
  report.orderCycles = cycles > report.abbaPairs
                           ? cycles - report.abbaPairs
                           : 0;
  if (report.orderCycles > 0) {
    diag.warn(DiagCode::PotentialDeadlock, {},
              "lock-order graph contains " +
                  std::to_string(report.orderCycles) +
                  " additional cycle(s) through three or more locks");
  }
  return report;
}

}  // namespace cssame::mutex
