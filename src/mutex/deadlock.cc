#include "src/mutex/deadlock.h"

#include <algorithm>
#include <map>
#include <set>

namespace cssame::mutex {

namespace {

/// One nested acquisition: a Lock(inner) node inside a body of `outer`.
struct Acquisition {
  SymbolId outer;
  SymbolId inner;
  NodeId site;  ///< the inner Lock node
};

}  // namespace

DeadlockReport detectDeadlocks(const pfg::Graph& graph,
                               const analysis::Mhp& mhp,
                               const MutexStructures& structures,
                               DiagEngine& diag) {
  DeadlockReport report;
  const ir::SymbolTable& syms = graph.program().symbols;

  // Collect nested acquisitions from well-formed bodies.
  std::vector<Acquisition> acquisitions;
  for (const pfg::Node& n : graph.nodes()) {
    if (n.kind != pfg::NodeKind::Lock) continue;
    const SymbolId inner = n.syncStmt->sync;
    for (const MutexBody& b : structures.bodies()) {
      if (!b.wellFormed || b.lockVar == inner) continue;
      if (b.members.test(n.id.index()))
        acquisitions.push_back(Acquisition{b.lockVar, inner, n.id});
    }
  }

  auto siteLoc = [&graph](NodeId site) {
    return graph.node(site).syncStmt->loc;
  };

  // ABBA: opposite orders at sites that may run concurrently.
  std::set<std::pair<SymbolId, SymbolId>> reported;
  for (const Acquisition& ab : acquisitions) {
    for (const Acquisition& ba : acquisitions) {
      if (ab.outer != ba.inner || ab.inner != ba.outer) continue;
      if (!mhp.mayHappenInParallel(ab.site, ba.site)) continue;
      const auto key = std::minmax(ab.outer, ab.inner);
      if (!reported.insert({key.first, key.second}).second) continue;
      ++report.abbaPairs;
      diag.warn(DiagCode::PotentialDeadlock, siteLoc(ab.site),
                "potential deadlock: locks '" + syms.nameOf(ab.outer) +
                    "' and '" + syms.nameOf(ab.inner) +
                    "' are acquired in opposite orders by concurrent "
                    "threads")
          .note(siteLoc(ab.site),
                "this thread acquires '" + syms.nameOf(ab.inner) +
                    "' while holding '" + syms.nameOf(ab.outer) + "'")
          .note(siteLoc(ba.site),
                "a concurrent thread acquires '" + syms.nameOf(ba.inner) +
                    "' while holding '" + syms.nameOf(ba.outer) + "'");
    }
  }

  // Longer cycles in the lock-order digraph (conservative: no pairwise
  // concurrency check). DFS over unique edges, keeping the path so the
  // warning can name a representative cycle with real source sites.
  std::map<SymbolId, std::set<SymbolId>> order;
  std::map<std::pair<SymbolId, SymbolId>, NodeId> edgeSite;
  for (const Acquisition& a : acquisitions) {
    order[a.outer].insert(a.inner);
    edgeSite.emplace(std::make_pair(a.outer, a.inner), a.site);
  }

  std::set<SymbolId> visiting, done;
  std::vector<SymbolId> path;
  std::vector<SymbolId> witnessCycle;  ///< first cycle through >= 3 locks
  std::size_t cycles = 0;
  auto dfs = [&](SymbolId v, auto&& self) -> void {
    visiting.insert(v);
    path.push_back(v);
    auto it = order.find(v);
    if (it != order.end()) {
      for (SymbolId next : it->second) {
        if (visiting.contains(next)) {
          // 2-cycles are the ABBA detector's province, where the MHP
          // check can rule out sequential opposite orders; only cycles
          // through three or more locks are counted here.
          const auto start = std::find(path.begin(), path.end(), next);
          if (std::distance(start, path.end()) >= 3) {
            ++cycles;
            if (witnessCycle.empty())
              witnessCycle.assign(start, path.end());
          }
          continue;
        }
        if (!done.contains(next)) self(next, self);
      }
    }
    path.pop_back();
    visiting.erase(v);
    done.insert(v);
  };
  for (const auto& [v, _] : order)
    if (!done.contains(v)) dfs(v, dfs);

  report.orderCycles = cycles;
  if (report.orderCycles > 0) {
    // Anchor the warning at the first acquisition of the witness cycle so
    // it points at source instead of <unknown>.
    SourceLoc loc;
    if (!witnessCycle.empty()) {
      auto it = edgeSite.find({witnessCycle.front(),
                               witnessCycle[1 % witnessCycle.size()]});
      if (it != edgeSite.end()) loc = siteLoc(it->second);
    }
    Diagnostic& d = diag.warn(
        DiagCode::PotentialDeadlock, loc,
        "lock-order graph contains " + std::to_string(report.orderCycles) +
            " cycle(s) through three or more locks");
    for (std::size_t i = 0; i < witnessCycle.size(); ++i) {
      const SymbolId from = witnessCycle[i];
      const SymbolId to = witnessCycle[(i + 1) % witnessCycle.size()];
      auto it = edgeSite.find({from, to});
      if (it == edgeSite.end()) continue;
      d.note(siteLoc(it->second),
             "'" + syms.nameOf(to) + "' acquired while holding '" +
                 syms.nameOf(from) + "'");
    }
  }
  return report;
}

}  // namespace cssame::mutex
