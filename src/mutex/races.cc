#include "src/mutex/races.h"

#include <algorithm>
#include <set>

namespace cssame::mutex {

namespace {

/// Locks (lock variables) whose well-formed bodies contain `node`.
std::set<SymbolId> locksetOf(NodeId node, const MutexStructures& structures) {
  std::set<SymbolId> out;
  for (MutexBodyId id : structures.bodiesContaining(node))
    out.insert(structures.body(id).lockVar);
  return out;
}

bool disjoint(const std::set<SymbolId>& a, const std::set<SymbolId>& b) {
  for (SymbolId x : a)
    if (b.contains(x)) return false;
  return true;
}

std::string locksetStr(const std::set<SymbolId>& ls,
                       const ir::SymbolTable& syms) {
  if (ls.empty()) return "{}";
  std::string out = "{";
  bool first = true;
  for (SymbolId l : ls) {
    if (!first) out += ", ";
    out += syms.nameOf(l);
    first = false;
  }
  out += "}";
  return out;
}

/// Statement performing the access the conflict edge endpoint refers to,
/// so warnings anchor at the real source site instead of the variable's
/// first definition.
const ir::Stmt* accessStmtAt(NodeId node, SymbolId var, bool isDef,
                             const analysis::AccessSites& sites) {
  if (isDef) {
    auto it = sites.defs.find(var);
    if (it != sites.defs.end())
      for (const auto& d : it->second)
        if (d.node == node) return d.stmt;
  } else {
    auto it = sites.uses.find(var);
    if (it != sites.uses.end())
      for (const auto& u : it->second)
        if (u.node == node) return u.stmt;
  }
  return nullptr;
}

}  // namespace

RaceReport detectRaces(const pfg::Graph& graph, const analysis::Mhp& mhp,
                       const MutexStructures& structures, DiagEngine& diag) {
  return detectRaces(graph, mhp, structures, diag,
                     analysis::collectAccessSites(graph));
}

RaceReport detectRaces(const pfg::Graph& graph, const analysis::Mhp& mhp,
                       const MutexStructures& structures, DiagEngine& diag,
                       const analysis::AccessSites& sites) {
  RaceReport report;
  const ir::SymbolTable& syms = graph.program().symbols;

  // Gather, per shared variable, the locksets of its definition sites.
  for (const auto& [var, defs] : sites.defs) {
    if (defs.size() < 2 && !sites.uses.contains(var)) continue;

    std::vector<std::set<SymbolId>> defLocksets;
    defLocksets.reserve(defs.size());
    for (const auto& d : defs)
      defLocksets.push_back(locksetOf(d.node, structures));

    // InconsistentLocking: some write protected by a lock, another write
    // not protected by that lock. Only meaningful if the variable is ever
    // accessed concurrently (otherwise locks are irrelevant to it).
    // Conflict edges are computed without the set/wait refinement (they
    // drive dataflow); for race reporting, accesses with a guaranteed
    // ordering cannot overlap and are excluded here.
    bool concurrentlyAccessed = false;
    for (const pfg::ConflictEdge& e : graph.conflicts)
      if (e.var == var && mhp.mayHappenInParallel(e.from, e.to)) {
        concurrentlyAccessed = true;
        break;
      }
    if (!concurrentlyAccessed) continue;

    std::set<SymbolId> intersection;
    bool first = true;
    for (const auto& ls : defLocksets) {
      if (first) {
        intersection = ls;
        first = false;
      } else {
        std::set<SymbolId> tmp;
        std::set_intersection(intersection.begin(), intersection.end(),
                              ls.begin(), ls.end(),
                              std::inserter(tmp, tmp.begin()));
        intersection = std::move(tmp);
      }
    }
    bool anyProtected = false;
    for (const auto& ls : defLocksets) anyProtected |= !ls.empty();
    if (anyProtected && intersection.empty() && defs.size() > 1) {
      ++report.inconsistentLocking;
      Diagnostic& d = diag.warn(
          DiagCode::InconsistentLocking, defs.front().stmt->loc,
          "writes to shared variable '" + syms.nameOf(var) +
              "' are not consistently protected by the same lock");
      // Witness: every write site with the locks it holds.
      for (std::size_t i = 0; i < defs.size(); ++i)
        d.note(defs[i].stmt->loc,
               "write under lockset " + locksetStr(defLocksets[i], syms));
    }

    // PotentialDataRace: concurrent def/def or def/use with disjoint
    // locksets. One warning per variable keeps output readable.
    bool raced = false;
    for (const pfg::ConflictEdge& e : graph.conflicts) {
      if (e.var != var || raced) continue;
      if (!mhp.mayHappenInParallel(e.from, e.to)) continue;
      const std::set<SymbolId> fromLs = locksetOf(e.from, structures);
      const std::set<SymbolId> toLs = locksetOf(e.to, structures);
      if (disjoint(fromLs, toLs)) {
        ++report.potentialRaces;
        raced = true;
        const ir::Stmt* fromStmt = accessStmtAt(e.from, var, true, sites);
        const ir::Stmt* toStmt =
            accessStmtAt(e.to, var, e.toIsDef, sites);
        // Anchor at the defining access of the conflict edge; the old
        // behaviour of pointing at the variable's first write mislocated
        // races whose sites were elsewhere.
        const SourceLoc loc =
            fromStmt != nullptr ? fromStmt->loc : defs.front().stmt->loc;
        Diagnostic& d = diag.warn(
            DiagCode::PotentialDataRace, loc,
            "potential data race on shared variable '" + syms.nameOf(var) +
                "': concurrent accesses share no common lock");
        d.note(loc, "write under lockset " + locksetStr(fromLs, syms));
        if (toStmt != nullptr)
          d.note(toStmt->loc,
                 std::string("concurrent ") +
                     (e.toIsDef ? "write" : "read") + " under lockset " +
                     locksetStr(toLs, syms));
      }
    }
  }
  return report;
}

}  // namespace cssame::mutex
