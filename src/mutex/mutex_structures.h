// Mutex bodies and mutex structures (paper Section 3.2, Algorithm A.1).
//
// A mutex body B_L(n,x) is the single-entry/single-exit region delimited
// by a Lock(L) node n and an Unlock(L) node x with n DOM x and x PDOM n,
// containing all nodes strictly dominated by n and post-dominated by x
// (x itself is a member, n is not — Definition 3). A candidate containing
// another Lock(L)/Unlock(L) node is *ill-formed*; unlike Masticola's
// strict intervals, ill-formed bodies do not invalidate the whole mutex
// structure — they are simply never used to reduce data dependencies
// (paper Section 3.2, point 3).
#pragma once

#include <unordered_map>
#include <vector>

#include "src/analysis/dominance.h"
#include "src/pfg/graph.h"
#include "src/support/bitset.h"
#include "src/support/diag.h"

namespace cssame::mutex {

struct MutexBody {
  MutexBodyId id;
  SymbolId lockVar;
  NodeId lockNode;    ///< n  = Lock(L)
  NodeId unlockNode;  ///< x  = Unlock(L)
  DynBitset members;  ///< node-id bitset of B_L(n,x); excludes n, includes x
  bool wellFormed = true;
};

/// The mutex structure M_L of a lock variable is the set of its mutex
/// bodies (Definition 4). This class holds all structures of a program.
class MutexStructures {
 public:
  /// Runs Algorithm A.1. `dom`/`pdom` are the forward and reverse trees of
  /// `graph`. When `diag` is non-null, unmatched Lock/Unlock nodes and
  /// ill-formed bodies are reported as warnings (paper Section 6).
  MutexStructures(const pfg::Graph& graph, const analysis::Dominators& dom,
                  const analysis::Dominators& pdom, DiagEngine* diag);

  [[nodiscard]] const std::vector<MutexBody>& bodies() const {
    return bodies_;
  }
  [[nodiscard]] const MutexBody& body(MutexBodyId id) const {
    return bodies_[id.index()];
  }

  /// Bodies of the mutex structure M_L (well- and ill-formed).
  [[nodiscard]] const std::vector<MutexBodyId>& structureOf(
      SymbolId lockVar) const {
    static const std::vector<MutexBodyId> kEmpty;
    auto it = structures_.find(lockVar);
    return it == structures_.end() ? kEmpty : it->second;
  }

  /// All lock variables that own at least one body.
  [[nodiscard]] const std::vector<SymbolId>& lockVars() const {
    return lockVars_;
  }

  /// The well-formed body of lock L containing node `node`, if any.
  /// Well-formed bodies of one lock never overlap, so this is unique.
  [[nodiscard]] MutexBodyId wellFormedBodyContaining(NodeId node,
                                                     SymbolId lockVar) const;

  /// All well-formed bodies (of any lock) containing `node` — the node's
  /// lockset, used by the data-race warnings.
  [[nodiscard]] std::vector<MutexBodyId> bodiesContaining(NodeId node) const;

 private:
  std::vector<MutexBody> bodies_;
  std::unordered_map<SymbolId, std::vector<MutexBodyId>> structures_;
  std::vector<SymbolId> lockVars_;
};

}  // namespace cssame::mutex
