#include "src/mutex/mutex_structures.h"

#include <algorithm>

namespace cssame::mutex {

MutexStructures::MutexStructures(const pfg::Graph& graph,
                                 const analysis::Dominators& dom,
                                 const analysis::Dominators& pdom,
                                 DiagEngine* diag) {
  // Lines 1–5: collect plock_i / punlock_i per lock variable.
  std::unordered_map<SymbolId, std::vector<NodeId>> locks, unlocks;
  for (const pfg::Node& n : graph.nodes()) {
    if (n.kind == pfg::NodeKind::Lock)
      locks[n.syncStmt->sync].push_back(n.id);
    else if (n.kind == pfg::NodeKind::Unlock)
      unlocks[n.syncStmt->sync].push_back(n.id);
  }

  std::vector<SymbolId> allLockVars;
  for (const auto& [l, _] : locks) allLockVars.push_back(l);
  for (const auto& [l, _] : unlocks)
    if (!locks.contains(l)) allLockVars.push_back(l);
  std::sort(allLockVars.begin(), allLockVars.end());

  // Lines 9–18: candidate bodies (n, x) with n DOM x and x PDOM n.
  for (SymbolId l : allLockVars) {
    std::vector<MutexBodyId> structure;
    for (NodeId n : locks[l]) {
      for (NodeId x : unlocks[l]) {
        if (!dom.dominates(n, x) || !pdom.dominates(x, n)) continue;
        MutexBody body;
        body.id = MutexBodyId{static_cast<MutexBodyId::value_type>(
            bodies_.size())};
        body.lockVar = l;
        body.lockNode = n;
        body.unlockNode = x;
        body.members.resize(graph.size());
        for (const pfg::Node& a : graph.nodes()) {
          if (dom.strictlyDominates(n, a.id) && pdom.dominates(x, a.id))
            body.members.set(a.id.index());
        }
        // Lines 19–26: a candidate containing another Lock(L)/Unlock(L)
        // node (other than its own delimiters) is ill-formed.
        for (NodeId m : locks[l]) {
          if (m != n && m != x && body.members.test(m.index()))
            body.wellFormed = false;
        }
        for (NodeId m : unlocks[l]) {
          if (m != n && m != x && body.members.test(m.index()))
            body.wellFormed = false;
        }
        structure.push_back(body.id);
        bodies_.push_back(std::move(body));
      }
    }
    if (!structure.empty()) {
      structures_[l] = std::move(structure);
      lockVars_.push_back(l);
    }
  }

  // Ill-formed candidates are only worth a warning when one of their
  // delimiters belongs to no well-formed body: two *sequential* regions
  // of the same lock also produce an ill-formed cross pair (first lock,
  // last unlock), but every delimiter still bounds a real body and the
  // structure is fine. Genuine nesting leaves the outer lock/unlock
  // unmatched, so it keeps warning here (and below as Unmatched*).
  if (diag != nullptr) {
    const auto delimitsWellFormed = [this](NodeId node, bool asLock) {
      for (const MutexBody& b : bodies_) {
        if (!b.wellFormed) continue;
        if ((asLock && b.lockNode == node) ||
            (!asLock && b.unlockNode == node))
          return true;
      }
      return false;
    };
    for (const MutexBody& b : bodies_) {
      if (b.wellFormed) continue;
      if (delimitsWellFormed(b.lockNode, true) &&
          delimitsWellFormed(b.unlockNode, false))
        continue;
      diag->warn(DiagCode::IllFormedMutexBody,
                 graph.node(b.lockNode).syncStmt->loc,
                 "mutex body for lock '" +
                     graph.program().symbols.nameOf(b.lockVar) +
                     "' contains nested lock/unlock of the same lock; "
                     "it will not be used to reduce dependencies");
    }
  }

  // Section 6: every Lock/Unlock node that delimits no well-formed body is
  // reported as a potentially unsafe synchronization structure.
  if (diag != nullptr) {
    for (const pfg::Node& n : graph.nodes()) {
      if (n.kind != pfg::NodeKind::Lock && n.kind != pfg::NodeKind::Unlock)
        continue;
      const bool isLock = n.kind == pfg::NodeKind::Lock;
      bool matched = false;
      for (const MutexBody& b : bodies_) {
        if (!b.wellFormed) continue;
        if ((isLock && b.lockNode == n.id) ||
            (!isLock && b.unlockNode == n.id)) {
          matched = true;
          break;
        }
      }
      if (!matched) {
        const std::string name =
            graph.program().symbols.nameOf(n.syncStmt->sync);
        diag->warn(isLock ? DiagCode::UnmatchedLock : DiagCode::UnmatchedUnlock,
                   n.syncStmt->loc,
                   std::string(isLock ? "lock(" : "unlock(") + name +
                       ") is not part of any well-formed mutex body");
      }
    }
  }
}

MutexBodyId MutexStructures::wellFormedBodyContaining(NodeId node,
                                                      SymbolId lockVar) const {
  auto it = structures_.find(lockVar);
  if (it == structures_.end()) return MutexBodyId{};
  for (MutexBodyId id : it->second) {
    const MutexBody& b = bodies_[id.index()];
    if (b.wellFormed && b.members.test(node.index())) return id;
  }
  return MutexBodyId{};
}

std::vector<MutexBodyId> MutexStructures::bodiesContaining(
    NodeId node) const {
  std::vector<MutexBodyId> out;
  for (const MutexBody& b : bodies_) {
    if (b.wellFormed && b.members.test(node.index())) out.push_back(b.id);
  }
  return out;
}

}  // namespace cssame::mutex
