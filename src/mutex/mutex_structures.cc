#include "src/mutex/mutex_structures.h"

#include <algorithm>

namespace cssame::mutex {

MutexStructures::MutexStructures(const pfg::Graph& graph,
                                 const analysis::Dominators& dom,
                                 const analysis::Dominators& pdom,
                                 DiagEngine* diag) {
  // Lines 1–5: collect plock_i / punlock_i per lock variable.
  std::unordered_map<SymbolId, std::vector<NodeId>> locks, unlocks;
  for (const pfg::Node& n : graph.nodes()) {
    if (n.kind == pfg::NodeKind::Lock)
      locks[n.syncStmt->sync].push_back(n.id);
    else if (n.kind == pfg::NodeKind::Unlock)
      unlocks[n.syncStmt->sync].push_back(n.id);
  }

  std::vector<SymbolId> allLockVars;
  for (const auto& [l, _] : locks) allLockVars.push_back(l);
  for (const auto& [l, _] : unlocks)
    if (!locks.contains(l)) allLockVars.push_back(l);
  std::sort(allLockVars.begin(), allLockVars.end());

  // Lines 9–18: candidate bodies (n, x) with n DOM x and x PDOM n.
  for (SymbolId l : allLockVars) {
    std::vector<MutexBodyId> structure;
    for (NodeId n : locks[l]) {
      for (NodeId x : unlocks[l]) {
        if (!dom.dominates(n, x) || !pdom.dominates(x, n)) continue;
        MutexBody body;
        body.id = MutexBodyId{static_cast<MutexBodyId::value_type>(
            bodies_.size())};
        body.lockVar = l;
        body.lockNode = n;
        body.unlockNode = x;
        body.members.resize(graph.size());
        for (const pfg::Node& a : graph.nodes()) {
          if (dom.strictlyDominates(n, a.id) && pdom.dominates(x, a.id))
            body.members.set(a.id.index());
        }
        // Lines 19–26: a candidate containing another Lock(L)/Unlock(L)
        // node (other than its own delimiters) is ill-formed.
        for (NodeId m : locks[l]) {
          if (m != n && m != x && body.members.test(m.index()))
            body.wellFormed = false;
        }
        for (NodeId m : unlocks[l]) {
          if (m != n && m != x && body.members.test(m.index()))
            body.wellFormed = false;
        }
        if (!body.wellFormed && diag != nullptr) {
          diag->warn(DiagCode::IllFormedMutexBody,
                     graph.node(n).syncStmt->loc,
                     "mutex body for lock '" +
                         graph.program().symbols.nameOf(l) +
                         "' contains nested lock/unlock of the same lock; "
                         "it will not be used to reduce dependencies");
        }
        structure.push_back(body.id);
        bodies_.push_back(std::move(body));
      }
    }
    if (!structure.empty()) {
      structures_[l] = std::move(structure);
      lockVars_.push_back(l);
    }
  }

  // Section 6: every Lock/Unlock node that delimits no well-formed body is
  // reported as a potentially unsafe synchronization structure.
  if (diag != nullptr) {
    for (const pfg::Node& n : graph.nodes()) {
      if (n.kind != pfg::NodeKind::Lock && n.kind != pfg::NodeKind::Unlock)
        continue;
      const bool isLock = n.kind == pfg::NodeKind::Lock;
      bool matched = false;
      for (const MutexBody& b : bodies_) {
        if (!b.wellFormed) continue;
        if ((isLock && b.lockNode == n.id) ||
            (!isLock && b.unlockNode == n.id)) {
          matched = true;
          break;
        }
      }
      if (!matched) {
        const std::string name =
            graph.program().symbols.nameOf(n.syncStmt->sync);
        diag->warn(isLock ? DiagCode::UnmatchedLock : DiagCode::UnmatchedUnlock,
                   n.syncStmt->loc,
                   std::string(isLock ? "lock(" : "unlock(") + name +
                       ") is not part of any well-formed mutex body");
      }
    }
  }
}

MutexBodyId MutexStructures::wellFormedBodyContaining(NodeId node,
                                                      SymbolId lockVar) const {
  auto it = structures_.find(lockVar);
  if (it == structures_.end()) return MutexBodyId{};
  for (MutexBodyId id : it->second) {
    const MutexBody& b = bodies_[id.index()];
    if (b.wellFormed && b.members.test(node.index())) return id;
  }
  return MutexBodyId{};
}

std::vector<MutexBodyId> MutexStructures::bodiesContaining(
    NodeId node) const {
  std::vector<MutexBodyId> out;
  for (const MutexBody& b : bodies_) {
    if (b.wellFormed && b.members.test(node.index())) out.push_back(b.id);
  }
  return out;
}

}  // namespace cssame::mutex
