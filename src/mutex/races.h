// Lock-consistency data race warnings (paper Section 6).
//
// The prototype compiler described in the paper warns about inconsistent
// use of locks to protect shared variables: "if modifications to a
// variable are not always protected by the same lock, the compiler will
// warn the user about a potential data race". This implements that check
// as a lockset analysis over mutex structures:
//   - InconsistentLocking: writes to a shared variable occur under
//     differing locksets (some writes protected by L, others not);
//   - PotentialDataRace: two concurrent conflicting accesses (at least one
//     a write) share no common lock.
#pragma once

#include "src/analysis/concurrency.h"
#include "src/mutex/mutex_structures.h"
#include "src/support/diag.h"

namespace cssame::mutex {

struct RaceReport {
  std::size_t inconsistentLocking = 0;
  std::size_t potentialRaces = 0;
};

RaceReport detectRaces(const pfg::Graph& graph, const analysis::Mhp& mhp,
                       const MutexStructures& structures, DiagEngine& diag);

/// Same, but reuses an already-collected access index for `graph` (e.g.
/// driver::Compilation::sites()) instead of re-walking every statement.
RaceReport detectRaces(const pfg::Graph& graph, const analysis::Mhp& mhp,
                       const MutexStructures& structures, DiagEngine& diag,
                       const analysis::AccessSites& sites);

}  // namespace cssame::mutex
