// Static deadlock warnings from lock acquisition ordering.
//
// The mutex-structure machinery descends from Masticola & Ryder's
// non-concurrency analysis, whose original purpose was deadlock
// detection; this module closes that loop. A nested acquisition —
// a Lock(B) node inside a well-formed mutex body of A — contributes an
// edge A→B to the lock-order graph. Two concurrent sites acquiring in
// opposite orders (A→B in one thread may-happen-in-parallel with B→A in
// another) are the classic ABBA deadlock and are reported; longer cycles
// through three or more locks are reported at lower confidence (the
// pairwise concurrency of every edge is not checked).
#pragma once

#include "src/analysis/concurrency.h"
#include "src/mutex/mutex_structures.h"
#include "src/support/diag.h"

namespace cssame::mutex {

struct DeadlockReport {
  std::size_t abbaPairs = 0;    ///< confirmed-concurrent opposite orders
  std::size_t orderCycles = 0;  ///< longer cycles in the lock-order graph
};

DeadlockReport detectDeadlocks(const pfg::Graph& graph,
                               const analysis::Mhp& mhp,
                               const MutexStructures& structures,
                               DiagEngine& diag);

}  // namespace cssame::mutex
