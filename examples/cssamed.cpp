// cssamed — the persistent analysis service.
//
// Usage:
//   cssamed --socket=PATH [options]     serve a Unix stream socket
//   cssamed --stdio [options]           serve one client on stdin/stdout
//
// Options:
//   --cache-dir=DIR    on-disk response cache surviving restarts (off by
//                      default; entries from other builds are rejected)
//   --mem-entries=N    capacity of each in-memory cache tier (default 128;
//                      0 disables in-memory caching)
//   --workers=N        analysis thread pool size (default 1: requests run
//                      inline on their connection threads; 0 = one worker
//                      per hardware thread)
//   --max-payload=N    per-frame payload bound in bytes (default 16 MiB)
//   --fleet=N          supervised multi-process mode: a gateway owning the
//                      socket routes requests across N forked worker
//                      daemons (consistent hashing, crash-restart with
//                      backoff, retry + local fallback; docs/SERVICE.md).
//                      Requires --socket. 0 (default) serves in-process.
//   --request-deadline-ms=N
//                      fleet only: wall-clock budget per routed request
//                      before the gateway retries/falls back (default
//                      30000; negative disables)
//   --version          print version and build fingerprint, then exit
//
// The daemon answers length-prefixed JSON requests (protocol and methods
// in docs/SERVICE.md) from a two-tier content-addressed cache; responses
// are byte-identical to standalone `cssamec` runs because both call the
// same driver entry points. SIGINT/SIGTERM shut down gracefully: the
// accept loop stops, in-flight requests finish, connection threads are
// joined, and the disk cache is left consistent for the next start. In
// fleet mode shutdown additionally EOFs every worker channel and reaps
// every child.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/service/fleet.h"
#include "src/service/server.h"
#include "src/support/version.h"

using namespace cssame;

namespace {

service::Server* gServer = nullptr;
service::Fleet* gFleet = nullptr;

void onSignal(int) {
  // requestShutdown is async-signal-safe: an atomic store plus a write(2)
  // to the self-pipe the accept loop polls.
  if (gFleet != nullptr) gFleet->requestShutdown();
  if (gServer != nullptr) gServer->requestShutdown();
}

void onChild(int) {
  // Wakes the fleet supervisor so a dead worker is reaped and restarted
  // immediately; also just an atomic-store-plus-write(2).
  if (gFleet != nullptr) gFleet->notifyChildEvent();
}

void usage() {
  std::fprintf(stderr,
               "usage: cssamed (--socket=PATH | --stdio) [--cache-dir=DIR] "
               "[--mem-entries=N] [--workers=N] [--max-payload=N] "
               "[--fleet=N] [--request-deadline-ms=N] [--version]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string socketPath;
  bool stdio = false;
  service::FleetOptions fleetOpts;
  service::ServerOptions& opts = fleetOpts.server;
  unsigned fleet = 0;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--version") == 0) {
      std::printf("%s\n", support::versionLine("cssamed").c_str());
      return 0;
    } else if (std::strncmp(arg, "--socket=", 9) == 0) {
      socketPath = arg + 9;
    } else if (std::strcmp(arg, "--stdio") == 0) {
      stdio = true;
    } else if (std::strncmp(arg, "--cache-dir=", 12) == 0) {
      opts.cacheDir = arg + 12;
    } else if (std::strncmp(arg, "--mem-entries=", 14) == 0) {
      opts.memEntries = std::strtoul(arg + 14, nullptr, 10);
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      opts.workers =
          static_cast<unsigned>(std::strtoul(arg + 10, nullptr, 10));
    } else if (std::strncmp(arg, "--max-payload=", 14) == 0) {
      opts.maxPayload = std::strtoul(arg + 14, nullptr, 10);
    } else if (std::strncmp(arg, "--fleet=", 8) == 0) {
      fleet = static_cast<unsigned>(std::strtoul(arg + 8, nullptr, 10));
    } else if (std::strncmp(arg, "--request-deadline-ms=", 22) == 0) {
      fleetOpts.requestDeadlineMs =
          static_cast<int>(std::strtol(arg + 22, nullptr, 10));
    } else {
      usage();
    }
  }
  if (stdio == !socketPath.empty()) usage();  // exactly one transport
  if (fleet > 0 && stdio) usage();            // the fleet needs the socket

  // writeAll already sends with MSG_NOSIGNAL, but ignore SIGPIPE too so
  // no stray write to a dead client can ever kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  if (fleet > 0) {
    fleetOpts.workers = fleet;
    service::Fleet gateway(fleetOpts);
    gFleet = &gateway;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGCHLD, onChild);
    std::fprintf(stderr, "%s gateway (%u workers) listening on %s\n",
                 support::versionLine("cssamed").c_str(), fleet,
                 socketPath.c_str());
    Status s = gateway.serveUnix(socketPath);
    gFleet = nullptr;
    if (!s.ok()) {
      std::fprintf(stderr, "cssamed: %s\n", s.fault().message.c_str());
      return 1;
    }
    return 0;
  }

  service::Server server(opts);
  gServer = &server;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  if (stdio) {
    server.serveStdio();
    return 0;
  }

  std::fprintf(stderr, "%s listening on %s\n",
               support::versionLine("cssamed").c_str(), socketPath.c_str());
  Status s = server.serveUnix(socketPath);
  if (!s.ok()) {
    std::fprintf(stderr, "cssamed: %s\n", s.fault().message.c_str());
    return 1;
  }
  return 0;
}
