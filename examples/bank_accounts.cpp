// Bank-teller workload: the motivating scenario for lock independent code
// motion. Tellers apply deposits under a global bank lock but also keep
// per-teller statistics inside the critical section; LICM evicts the
// bookkeeping, and the interleaving interpreter quantifies how much
// shorter the lock is held.
//
//   $ ./bank_accounts [tellers] [ops-per-teller]
#include <cstdio>
#include <cstdlib>

#include "src/driver/pipeline.h"
#include "src/interp/interp.h"
#include "src/ir/printer.h"
#include "src/opt/optimize.h"
#include "src/workload/generator.h"

using namespace cssame;

namespace {

struct Measurement {
  std::uint64_t holdSteps = 0;
  std::uint64_t totalSteps = 0;
  long long balanceSum = 0;
};

Measurement measure(const ir::Program& prog, std::uint64_t seeds) {
  Measurement m;
  for (const interp::RunResult& r : interp::runManySeeds(prog, seeds)) {
    if (!r.completed || r.deadlocked || r.lockError) {
      std::fprintf(stderr, "execution failed!\n");
      std::exit(1);
    }
    m.holdSteps += r.totalHoldSteps();
    m.totalSteps += r.steps;
    for (long long v : r.output) m.balanceSum += v;
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const int tellers = argc > 1 ? std::atoi(argv[1]) : 4;
  const int ops = argc > 2 ? std::atoi(argv[2]) : 6;
  const std::uint64_t kSeeds = 10;

  ir::Program prog = workload::makeBank(/*accounts=*/3, tellers, ops,
                                        /*seed=*/42);
  std::printf("=== Bank workload: %d tellers x %d deposits ===\n\n", tellers,
              ops);

  const Measurement before = measure(prog, kSeeds);

  // How much of each critical section is lock independent?
  driver::Compilation c = driver::analyze(prog);
  std::printf("mutex bodies: %zu,  pi terms: %zu (CSSAME)\n",
              c.mutexes().bodies().size(), c.ssa().countLivePis());

  opt::OptimizeReport report = opt::optimizeProgram(prog);
  std::printf("LICM: %zu statements hoisted, %zu sunk, %zu empty bodies "
              "removed\n\n",
              report.lockMotion.hoisted, report.lockMotion.sunk,
              report.lockMotion.bodiesRemoved);

  const Measurement after = measure(prog, kSeeds);
  if (before.balanceSum != after.balanceSum) {
    std::fprintf(stderr, "optimization changed program results!\n");
    return 1;
  }

  std::printf("lock-held steps (sum over %llu interleavings):\n",
              static_cast<unsigned long long>(kSeeds));
  std::printf("  before LICM: %8llu  (of %llu total)\n",
              static_cast<unsigned long long>(before.holdSteps),
              static_cast<unsigned long long>(before.totalSteps));
  std::printf("  after  LICM: %8llu  (of %llu total)\n",
              static_cast<unsigned long long>(after.holdSteps),
              static_cast<unsigned long long>(after.totalSteps));
  const double shrink =
      before.holdSteps == 0
          ? 0.0
          : 100.0 * (1.0 - static_cast<double>(after.holdSteps) /
                               static_cast<double>(before.holdSteps));
  std::printf("  critical sections shrank by %.1f%%\n", shrink);
  std::printf("  account balances identical before/after: sum = %lld\n",
              after.balanceSum);
  return 0;
}
