// Synchronization diagnostics (paper Section 6): the compiler warns about
// unmatched Lock/Unlock operations, ill-formed mutex bodies, inconsistent
// locking disciplines and potential data races.
//
//   $ ./race_detective
#include <cstdio>

#include "src/driver/pipeline.h"
#include "src/mutex/deadlock.h"
#include "src/mutex/races.h"
#include "src/parser/parser.h"

using namespace cssame;

namespace {

void report(const char* title, const char* source) {
  std::printf("=== %s ===\n", title);
  ir::Program prog = parser::parseOrDie(source);
  driver::Compilation c = driver::analyze(prog);
  mutex::RaceReport races =
      mutex::detectRaces(c.graph(), c.mhp(), c.mutexes(), c.diag());
  mutex::detectDeadlocks(c.graph(), c.mhp(), c.mutexes(), c.diag());
  if (c.diag().diagnostics().empty()) {
    std::printf("  no warnings\n");
  } else {
    for (const auto& d : c.diag().diagnostics())
      std::printf("  %s\n", d.str().c_str());
  }
  std::printf("  (%zu inconsistent-locking, %zu potential races)\n\n",
              races.inconsistentLocking, races.potentialRaces);
}

}  // namespace

int main() {
  report("Clean program", R"(
    int a; lock L;
    cobegin {
      thread { lock(L); a = a + 1; unlock(L); }
      thread { lock(L); a = a + 2; unlock(L); }
    }
    print(a);
  )");

  report("Unprotected concurrent writes", R"(
    int a;
    cobegin {
      thread { a = 1; }
      thread { a = 2; }
    }
    print(a);
  )");

  report("Inconsistent locks (L1 vs L2)", R"(
    int a; lock L1, L2;
    cobegin {
      thread { lock(L1); a = a + 1; unlock(L1); }
      thread { lock(L2); a = a + 2; unlock(L2); }
    }
    print(a);
  )");

  report("Unmatched lock (conditional unlock)", R"(
    int a, c; lock L;
    cobegin {
      thread {
        lock(L);
        a = a + 1;
        if (c > 0) { unlock(L); } else { a = 0; unlock(L); }
      }
      thread { lock(L); a = a + 2; unlock(L); }
    }
    print(a);
  )");

  report("ABBA deadlock (opposite lock orders)", R"(
    int a; lock L, M;
    cobegin {
      thread { lock(L); lock(M); a = a + 1; unlock(M); unlock(L); }
      thread { lock(M); lock(L); a = a + 2; unlock(L); unlock(M); }
    }
    print(a);
  )");

  report("Ill-formed body (nested same-lock lock)", R"(
    int a; lock L;
    cobegin {
      thread { lock(L); lock(L); a = a + 1; unlock(L); unlock(L); }
      thread { lock(L); a = a + 2; unlock(L); }
    }
    print(a);
  )");
  return 0;
}
