// cssamec — command line driver for the CSSAME compiler library.
//
// Usage:
//   cssamec [options] <file.cp> [more files...]
//
// Options:
//   --dump-pfg        print the Parallel Flow Graph as Graphviz DOT
//   --dump-form       print the CSSA/CSSAME form (like the paper's Fig. 3)
//   --no-cssame       stop at plain CSSA (skip the π rewriting)
//   --opt             run CSCC + PDCE + LICM and print the optimized program
//   --run [seed]      execute under the interleaving interpreter
//   --races           run the lock-consistency data race checks
//   --stats           print analysis statistics and per-phase wall-clock
//   --csan            run the full static concurrency analyzer
//   --vrange          run the concurrent value-range analysis (CVRA)
//   --sarif[=FILE]    emit all diagnostics as SARIF 2.1.0 (implies --csan);
//                     FILE defaults to stdout
//   --json[=FILE]     emit all diagnostics as compact JSON (implies --csan)
//   --jobs=N          analyze the input files on N threads (0 = one per
//                     hardware thread); output stays in input order
//
// With several input files each file is analyzed independently; with
// --jobs=N the analyses run concurrently on a thread pool, and each
// file's stdout/stderr is buffered and flushed in input order, so the
// output is byte-identical for every job count. --sarif=FILE/--json=FILE
// are single-file options (the streams would overwrite each other).
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/cssa/form_printer.h"
#include "src/driver/pipeline.h"
#include "src/interp/interp.h"
#include "src/ir/printer.h"
#include "src/mutex/deadlock.h"
#include "src/mutex/races.h"
#include "src/opt/lockstats.h"
#include "src/opt/optimize.h"
#include "src/parser/parser.h"
#include "src/pfg/dot.h"
#include "src/sanalysis/csan.h"
#include "src/sanalysis/sarif.h"
#include "src/sanalysis/vrange.h"
#include "src/support/threadpool.h"

using namespace cssame;

namespace {

struct Options {
  bool dumpPfg = false, dumpForm = false, cssame = true, doOpt = false;
  bool doRun = false, doRaces = false, doStats = false, doCsan = false;
  bool doSarif = false, doJson = false, doVrange = false;
  std::string sarifPath, jsonPath;
  std::uint64_t seed = 1;
  unsigned jobs = 1;
};

void usage() {
  std::fprintf(stderr,
               "usage: cssamec [--dump-pfg] [--dump-form] [--no-cssame] "
               "[--opt] [--run [seed]] [--races] [--stats] [--csan] "
               "[--vrange] [--sarif[=FILE]] [--json[=FILE]] [--jobs=N] "
               "<file> [more files...]\n");
  std::exit(2);
}

/// printf into a growing string — per-file output is buffered so parallel
/// jobs can flush it in input order.
void appendf(std::string& out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buf[4096];
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

/// Writes structured output to `path` ("" = buffered stdout). Fails the
/// run on I/O errors so CI runs fail loudly instead of uploading an empty
/// log.
bool writeOut(const std::string& path, const std::string& text,
              std::string& out, std::string& err) {
  if (path.empty()) {
    out += text + "\n";
    return true;
  }
  std::ofstream f(path);
  if (!f) {
    appendf(err, "cssamec: cannot write '%s'\n", path.c_str());
    return false;
  }
  f << text << "\n";
  return true;
}

/// Analyzes one input file, appending everything it would print to `out`
/// (stdout) and `err` (stderr). Returns the per-file exit code.
int processFile(const std::string& file, const Options& o, std::string& out,
                std::string& err) {
  std::ifstream in(file);
  if (!in) {
    appendf(err, "cssamec: cannot open '%s'\n", file.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  DiagEngine diag;
  ir::Program prog = parser::parseProgram(buf.str(), diag);
  for (const auto& d : diag.diagnostics())
    appendf(err, "%s\n", d.str().c_str());
  if (diag.hasErrors()) {
    // Structured modes still get a log (with the parse errors), so CI can
    // upload something meaningful for broken inputs.
    bool ok = true;
    if (o.doSarif)
      ok &= writeOut(o.sarifPath,
                     sanalysis::toSarif(diag.diagnostics(), file.c_str()),
                     out, err);
    if (o.doJson)
      ok &= writeOut(o.jsonPath,
                     sanalysis::toJson(diag.diagnostics(), file.c_str()),
                     out, err);
    (void)ok;
    return 1;
  }

  driver::Compilation c = driver::analyze(prog, {.enableCssame = o.cssame});
  for (const auto& d : c.diag().diagnostics())
    appendf(err, "%s\n", d.str().c_str());

  if (o.doRaces) {
    DiagEngine raceDiag;
    mutex::detectRaces(c.graph(), c.mhp(), c.mutexes(), raceDiag, c.sites());
    mutex::detectDeadlocks(c.graph(), c.mhp(), c.mutexes(), raceDiag);
    for (const auto& d : raceDiag.diagnostics())
      appendf(err, "%s\n", d.str().c_str());
  }
  // Analyzer diagnostics (csan, then vrange) accumulate into one engine
  // so the SARIF/JSON streams carry every finding.
  DiagEngine toolDiag;
  if (o.doCsan) {
    const sanalysis::CsanReport report = sanalysis::runCsan(c, toolDiag);
    for (const auto& d : toolDiag.diagnostics())
      appendf(err, "%s\n", d.str().c_str());
    appendf(err,
            "csan: %zu finding(s): %zu race(s), %zu inconsistent, "
            "%zu deadlock(s), %zu self-deadlock(s), %zu leak(s), "
            "%zu body lint(s), %zu unprotected pi read(s)\n",
            report.totalFindings(), report.potentialRaces,
            report.inconsistentLocking,
            report.deadlocks.abbaPairs + report.deadlocks.orderCycles,
            report.selfDeadlocks, report.lockLeaks,
            report.emptyBodies + report.redundantBodies +
                report.overwideBodies,
            report.unprotectedPiReads);
  }
  if (o.doVrange) {
    const std::size_t before = toolDiag.diagnostics().size();
    const sanalysis::VrangeResult vr =
        sanalysis::analyzeValueRanges(c, &toolDiag);
    for (std::size_t i = before; i < toolDiag.diagnostics().size(); ++i)
      appendf(err, "%s\n", toolDiag.diagnostics()[i].str().c_str());
    appendf(err, "%s\n", vr.stats.str().c_str());
    const std::string mismatch = sanalysis::crossCheckConstants(c, vr);
    if (!mismatch.empty()) {
      appendf(err, "vrange: CSCC cross-check FAILED: %s\n", mismatch.c_str());
      return 1;
    }
  }
  if (o.doSarif || o.doJson) {
    // One stream in emission order: pipeline warnings, then the analyzers'.
    std::vector<Diagnostic> all = c.diag().diagnostics();
    all.insert(all.end(), toolDiag.diagnostics().begin(),
               toolDiag.diagnostics().end());
    if (o.doSarif &&
        !writeOut(o.sarifPath, sanalysis::toSarif(all, file.c_str()), out,
                  err))
      return 1;
    if (o.doJson &&
        !writeOut(o.jsonPath, sanalysis::toJson(all, file.c_str()), out, err))
      return 1;
  }
  if (o.doStats) {
    appendf(out, "statements:        %zu\n", prog.size());
    appendf(out, "pfg nodes:         %zu\n", c.graph().size());
    appendf(out, "conflict edges:    %zu\n", c.graph().conflicts.size());
    appendf(out, "mutex bodies:      %zu\n", c.mutexes().bodies().size());
    appendf(out, "phi terms:         %zu\n", c.ssa().countLivePhis());
    appendf(out, "pi terms:          %zu\n", c.ssa().countLivePis());
    appendf(out, "pi conflict args:  %zu\n", c.ssa().countPiConflictArgs());
    if (o.cssame)
      appendf(out, "pi args removed:   %zu (pis folded: %zu)\n",
              c.rewriteStats().argsRemoved, c.rewriteStats().pisRemoved);
    const opt::CriticalSectionReport cs = opt::analyzeCriticalSections(c);
    appendf(out,
            "critical sections: %zu stmts locked, %zu lock independent "
            "(%.0f%%)\n",
            cs.totalInterior, cs.totalIndependent,
            100.0 * cs.independentFraction());
    // Force the lazy dataflow caches so the stats are deterministic.
    (void)c.heldLocks();
    (void)c.reaching();
    for (const dataflow::SolveStats& s : c.solverStats())
      appendf(out, "solver:            %s\n", s.str().c_str());
    for (const support::PhaseTime& p : c.phaseTimes())
      appendf(out, "phase:             %s\n", p.str().c_str());
  }
  if (o.dumpPfg) appendf(out, "%s", pfg::toDot(c.graph()).c_str());
  if (o.dumpForm)
    appendf(out, "%s", cssa::printForm(c.graph(), c.ssa()).c_str());

  if (o.doOpt) {
    opt::OptimizeReport report =
        opt::optimizeProgram(prog, {.cssame = o.cssame});
    appendf(out, "%s", ir::printProgram(prog).c_str());
    appendf(err,
            "; opt: %zu uses folded, %zu dead removed, %zu hoisted, "
            "%zu sunk, %d iterations\n",
            report.constProp.usesReplaced, report.deadCode.stmtsRemoved,
            report.lockMotion.hoisted, report.lockMotion.sunk,
            report.iterations);
  }
  if (o.doRun) {
    interp::RunResult r = interp::run(prog, {.seed = o.seed});
    for (long long v : r.output) appendf(out, "%lld\n", v);
    if (!r.completed)
      appendf(err, "%s\n",
              r.deadlocked ? "deadlock" : "step limit exceeded");
    if (r.lockError) appendf(err, "lock error\n");
    if (r.assertFailed) appendf(err, "assertion failed\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--dump-pfg") == 0) o.dumpPfg = true;
    else if (std::strcmp(arg, "--dump-form") == 0) o.dumpForm = true;
    else if (std::strcmp(arg, "--no-cssame") == 0) o.cssame = false;
    else if (std::strcmp(arg, "--opt") == 0) o.doOpt = true;
    else if (std::strcmp(arg, "--races") == 0) o.doRaces = true;
    else if (std::strcmp(arg, "--stats") == 0) o.doStats = true;
    else if (std::strcmp(arg, "--csan") == 0) o.doCsan = true;
    else if (std::strcmp(arg, "--vrange") == 0) o.doVrange = true;
    else if (std::strncmp(arg, "--sarif", 7) == 0 &&
             (arg[7] == '\0' || arg[7] == '=')) {
      o.doSarif = o.doCsan = true;
      if (arg[7] == '=') o.sarifPath = arg + 8;
    } else if (std::strncmp(arg, "--json", 6) == 0 &&
               (arg[6] == '\0' || arg[6] == '=')) {
      o.doJson = o.doCsan = true;
      if (arg[6] == '=') o.jsonPath = arg + 7;
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      o.jobs = static_cast<unsigned>(std::strtoul(arg + 7, nullptr, 10));
    } else if (std::strcmp(arg, "--run") == 0) {
      o.doRun = true;
      if (i + 1 < argc && std::isdigit(static_cast<unsigned char>(
                              argv[i + 1][0])))
        o.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg[0] == '-') {
      usage();
    } else {
      files.emplace_back(arg);
    }
  }
  if (files.empty()) usage();
  if (files.size() > 1 && (!o.sarifPath.empty() || !o.jsonPath.empty())) {
    std::fprintf(stderr,
                 "cssamec: --sarif=FILE/--json=FILE take a single input "
                 "file (outputs would overwrite each other)\n");
    return 2;
  }

  std::vector<std::string> outs(files.size()), errs(files.size());
  std::vector<int> codes(files.size(), 0);
  support::ThreadPool pool(o.jobs);
  pool.parallelFor(files.size(), [&](std::size_t i, unsigned) {
    codes[i] = processFile(files[i], o, outs[i], errs[i]);
  });

  int code = 0;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (files.size() > 1 && (!outs[i].empty() || !errs[i].empty())) {
      std::fprintf(stderr, "== %s\n", files[i].c_str());
    }
    std::fwrite(outs[i].data(), 1, outs[i].size(), stdout);
    std::fwrite(errs[i].data(), 1, errs[i].size(), stderr);
    if (code == 0) code = codes[i];
  }
  return code;
}
