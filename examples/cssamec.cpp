// cssamec — command line driver for the CSSAME compiler library.
//
// Usage:
//   cssamec [options] <file.cp> [more files...]
//
// Options:
//   --dump-pfg        print the Parallel Flow Graph as Graphviz DOT
//   --dump-form       print the CSSA/CSSAME form (like the paper's Fig. 3)
//   --no-cssame       stop at plain CSSA (skip the π rewriting)
//   --opt             run CSCC + PDCE + LICM and print the optimized program
//   --run [seed]      execute under the interleaving interpreter
//   --races           run the lock-consistency data race checks
//   --stats           print analysis statistics and per-phase wall-clock
//   --csan            run the full static concurrency analyzer
//   --vrange          run the concurrent value-range analysis (CVRA)
//   --tso             run the TSO weak-memory analysis (reorderable
//                     store/load pairs; redundant fences)
//   --points-to       print the concurrent points-to solution (per deref
//                     site targets, pointer-holding cells, solver stats)
//   --explore         exhaustively enumerate every schedule (bounded) and
//                     print the output set plus deadlock / lock-error /
//                     assertion verdicts; honors --memory-model
//   --no-dpor         disable dynamic partial-order reduction during
//                     --explore (the unreduced sweep — slower, identical
//                     verdicts; the equality oracle for the reduction)
//   --fix[=TARGET]    synthesize and print a *verified* repair for the
//                     analyses' findings: lock insertions for races,
//                     fences/atomic upgrades for TSO violations, fence
//                     deletions for FenceRedundant. TARGET is all
//                     (default), race, may-alias, tso, fence, or the
//                     corresponding diagnostic code name. Every returned
//                     patch re-passed csan/tso and the schedule explorer
//                     (docs/REPAIR.md); exit 1 when some finding has no
//                     safe fix
//   --memory-model=M  memory model for --run: sc (default) or tso (plain
//                     stores buffer per thread and flush asynchronously)
//   --sarif[=FILE]    emit all diagnostics as SARIF 2.1.0 (implies --csan);
//                     FILE defaults to stdout
//   --json[=FILE]     emit all diagnostics as compact JSON (implies --csan)
//   --jobs=N          analyze the input files on N threads (0 = one per
//                     hardware thread); output stays in input order
//   --connect=SOCK    send the files to a running cssamed at Unix socket
//                     SOCK instead of analyzing in-process; output is
//                     byte-identical to a local run (both sides call the
//                     same driver::runSource)
//   --timeout-ms=N    client-side deadline per request in --connect mode
//                     (default 30000; negative waits forever). A timed-out
//                     or failed exchange is retried once on a fresh
//                     connection after a small jittered pause — a daemon
//                     mid-restart gets one chance to come back — and then
//                     reported as a clear error with exit code 1.
//   --version         print version and build fingerprint, then exit
//
// With several input files each file is analyzed independently; with
// --jobs=N the analyses run concurrently on a thread pool, and each
// file's stdout/stderr is buffered and flushed in input order, so the
// output is byte-identical for every job count. --sarif=FILE/--json=FILE
// are single-file options (the streams would overwrite each other).
//
// SIGINT/SIGTERM during a batch run stop scheduling new files, flush the
// buffered output of every file already analyzed (in input order, as
// usual), and exit 130 — a killed batch never loses finished work.
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/driver/runner.h"
#include "src/repair/candidates.h"
#include "src/service/json.h"
#include "src/service/protocol.h"
#include "src/support/io.h"
#include "src/support/threadpool.h"
#include "src/support/version.h"

using namespace cssame;

namespace {

struct Options {
  driver::RunOptions run;
  unsigned jobs = 1;
  std::string connectPath;
  /// Per-request wall-clock budget in --connect mode; negative disables.
  int timeoutMs = 30000;
};

/// Set by the SIGINT/SIGTERM handler; the batch loop polls it before
/// starting each file.
std::atomic<bool> gInterrupted{false};

void onSignal(int) { gInterrupted.store(true, std::memory_order_relaxed); }

void usage() {
  std::fprintf(stderr,
               "usage: cssamec [--dump-pfg] [--dump-form] [--no-cssame] "
               "[--opt] [--run [seed]] [--races] [--stats] [--csan] "
               "[--vrange] [--tso] [--points-to] [--explore] [--no-dpor] "
               "[--fix[=TARGET]] [--memory-model=sc|tso] "
               "[--sarif[=FILE]] [--json[=FILE]] [--jobs=N] "
               "[--connect=SOCK] [--timeout-ms=N] [--version] "
               "<file> [more files...]\n");
  std::exit(2);
}

/// Reads one input file; returns false (with a message in `err`) when it
/// cannot be opened.
bool readFile(const std::string& file, std::string& source,
              std::string& err) {
  std::ifstream in(file);
  if (!in) {
    err += "cssamec: cannot open '" + file + "'\n";
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  source = buf.str();
  return true;
}

/// Analyzes one input file in-process. Returns the per-file exit code.
int processFile(const std::string& file, const driver::RunOptions& o,
                std::string& out, std::string& err) {
  std::string source;
  if (!readFile(file, source, err)) return 1;
  driver::RunOutput r = driver::runSource(source, file, o);
  out += r.out;
  err += r.err;
  return r.code;
}

/// Client mode: ships each file to a running cssamed and unpacks the
/// response into the same (out, err, code) triple a local run produces.
/// Every frame carries the client deadline, so a wedged or dead daemon
/// surfaces as a bounded failure, never a hang. `transportFailed` is set
/// when the *connection* broke (send/recv failure or timeout — the stream
/// is desynchronized and must be abandoned), as opposed to the daemon
/// answering with a structured error.
int processRemote(const service::Json& request, support::FdStream& conn,
                  std::size_t maxPayload, int timeoutMs, std::string& out,
                  std::string& err, bool* transportFailed = nullptr) {
  if (transportFailed) *transportFailed = false;
  const support::Deadline deadline = support::Deadline::in(timeoutMs);
  if (Status s = service::writeFrameDeadline(conn, request.write(),
                                             maxPayload, deadline);
      !s.ok()) {
    err += "cssamec: send failed: " + s.fault().message + "\n";
    if (transportFailed) *transportFailed = true;
    return 1;
  }
  std::string payload;
  const service::FrameStatus fs =
      service::readFrameDeadline(conn, payload, maxPayload, deadline);
  if (fs != service::FrameStatus::Ok) {
    err += std::string("cssamec: bad response frame: ") +
           service::frameStatusName(fs) + "\n";
    if (transportFailed) *transportFailed = true;
    return 1;
  }
  Expected<service::Json> response = service::parseJson(payload);
  if (!response) {
    err += "cssamec: unparseable response: " + response.fault().message +
           "\n";
    return 1;
  }
  if (!response->getBool("ok", false)) {
    const service::Json& fault = response->get("error");
    err += "cssamec: server error [" + fault.getString("kind", "?") +
           "/" + fault.getString("stage", "?") +
           "]: " + fault.getString("message", "") + "\n";
    return 1;
  }
  const service::Json& result = response->get("result");
  out += result.getString("out", "");
  err += result.getString("err", "");
  return static_cast<int>(result.getInt("code", 0));
}

/// One request with one recovery attempt: when the exchange breaks (the
/// daemon died, was restarting, or timed out), pause a jittered moment —
/// so a thundering herd of clients doesn't reconnect in lockstep — and
/// retry once on a fresh connection. The first attempt's error text is
/// discarded if the retry succeeds; otherwise the retry's error stands.
int processRemoteWithRetry(const service::Json& request,
                           support::FdStream& conn,
                           const std::string& connectPath,
                           std::size_t maxPayload, int timeoutMs,
                           std::string& out, std::string& err) {
  std::string out1, err1;
  bool transportFailed = false;
  const int code = processRemote(request, conn, maxPayload, timeoutMs, out1,
                                 err1, &transportFailed);
  if (!transportFailed) {
    out += out1;
    err += err1;
    return code;
  }
  const int jitterMs = 10 + static_cast<int>(::getpid() % 50);
  std::this_thread::sleep_for(std::chrono::milliseconds(jitterMs));
  Expected<support::FdStream> fresh = support::connectUnix(connectPath);
  if (!fresh) {
    err += err1;
    err += "cssamec: reconnect to '" + connectPath +
           "' failed: " + fresh.fault().message + "\n";
    return 1;
  }
  conn = std::move(*fresh);
  std::string out2, err2;
  const int retryCode = processRemote(request, conn, maxPayload, timeoutMs,
                                      out2, err2, &transportFailed);
  if (transportFailed) err += err1;  // both attempts failed: report both
  out += out2;
  err += err2;
  return retryCode;
}

/// With --stats in --connect mode, asks the daemon for its `stats` body
/// and renders the fleet-health section (when the far end is a fleet
/// gateway): routing/retry/fallback/deadline counters and per-worker
/// restart counts. Returns the empty string for a standalone daemon (or
/// any failure); the caller prints to stderr after the per-file output,
/// like the local per-phase stats.
std::string fleetHealthReport(support::FdStream& conn,
                              std::size_t maxPayload, int timeoutMs) {
  service::Json request = service::Json::object();
  request.set("id", "stats").set("method", "stats");
  const support::Deadline deadline = support::Deadline::in(timeoutMs);
  if (Status s = service::writeFrameDeadline(conn, request.write(),
                                             maxPayload, deadline);
      !s.ok())
    return "";
  std::string payload;
  if (service::readFrameDeadline(conn, payload, maxPayload, deadline) !=
      service::FrameStatus::Ok)
    return "";
  Expected<service::Json> response = service::parseJson(payload);
  if (!response || !response->getBool("ok", false)) return "";
  const service::Json& result = response->get("result");
  const service::Json& fleet = result.get("fleet");
  if (!fleet.isObject()) return "";  // a standalone daemon: nothing to add
  auto n = [&fleet](const char* key) {
    return std::to_string(fleet.getInt(key, 0));
  };
  std::string report = "== service fleet health\n";
  report += "gateway: " + n("workers") + " workers, " + n("requests") +
            " requests (" + n("routed") + " routed, " + n("retried") +
            " retried, " + n("fallbacks") + " fallbacks, " +
            n("deadlines") + " deadline expiries)\n";
  report += "supervision: " + n("workerDeaths") + " worker deaths, " +
            n("restarts") + " restarts (" + n("failedRestarts") +
            " failed), " + n("breakerTrips") + " breaker trips, " +
            n("probeFailures") + "/" + n("probes") + " probes failed\n";
  for (const service::Json& slot : result.get("slots").items()) {
    report += "worker " + std::to_string(slot.getInt("slot", -1)) + ": " +
              slot.getString("state", "?") + ", restarts " +
              std::to_string(slot.getInt("restarts", 0)) + "\n";
  }
  return report;
}

/// Builds the analyze request for one file from the CLI options — the
/// daemon decodes this back into the identical driver::RunOptions.
service::Json buildRequest(const std::string& file,
                           const std::string& source,
                           const driver::RunOptions& o, std::size_t id) {
  service::Json options = service::Json::object();
  options.set("dumpPfg", o.dumpPfg)
      .set("dumpForm", o.dumpForm)
      .set("cssame", o.cssame)
      .set("opt", o.doOpt)
      .set("run", o.doRun)
      .set("races", o.doRaces)
      .set("stats", o.doStats)
      .set("csan", o.doCsan)
      .set("sarif", o.doSarif)
      .set("json", o.doJson)
      .set("vrange", o.doVrange)
      .set("tso", o.doTso)
      .set("pointsTo", o.doPointsTo)
      .set("explore", o.doExplore)
      .set("dpor", o.dpor)
      .set("memoryModel", support::memoryModelName(o.memoryModel))
      .set("seed", o.seed);
  // Only present when requested: older daemons reject unknown keys, and
  // an absent key keeps pre-fix requests byte-identical.
  if (o.doFix) options.set("fix", o.fixTarget);
  service::Json request = service::Json::object();
  request.set("id", id)
      .set("method", "analyze")
      .set("file", file)
      .set("source", source)
      .set("options", std::move(options));
  return request;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--version") == 0) {
      std::printf("%s\n", support::versionLine("cssamec").c_str());
      return 0;
    } else if (std::strcmp(arg, "--dump-pfg") == 0) o.run.dumpPfg = true;
    else if (std::strcmp(arg, "--dump-form") == 0) o.run.dumpForm = true;
    else if (std::strcmp(arg, "--no-cssame") == 0) o.run.cssame = false;
    else if (std::strcmp(arg, "--opt") == 0) o.run.doOpt = true;
    else if (std::strcmp(arg, "--races") == 0) o.run.doRaces = true;
    else if (std::strcmp(arg, "--stats") == 0) o.run.doStats = true;
    else if (std::strcmp(arg, "--csan") == 0) o.run.doCsan = true;
    else if (std::strcmp(arg, "--vrange") == 0) o.run.doVrange = true;
    else if (std::strcmp(arg, "--tso") == 0) o.run.doTso = true;
    else if (std::strcmp(arg, "--points-to") == 0) o.run.doPointsTo = true;
    else if (std::strcmp(arg, "--explore") == 0) o.run.doExplore = true;
    else if (std::strcmp(arg, "--no-dpor") == 0) o.run.dpor = false;
    else if (std::strncmp(arg, "--fix", 5) == 0 &&
             (arg[5] == '\0' || arg[5] == '=')) {
      o.run.doFix = true;
      if (arg[5] == '=') {
        repair::FixTarget target;
        if (!repair::parseFixTarget(arg + 6, target)) {
          std::fprintf(stderr,
                       "cssamec: unknown fix target '%s' (all, race, "
                       "may-alias, tso, fence, or a diagnostic code "
                       "name)\n",
                       arg + 6);
          return 2;
        }
        o.run.fixTarget = repair::fixTargetName(target);
      }
    }
    else if (std::strncmp(arg, "--memory-model=", 15) == 0) {
      if (!support::parseMemoryModel(arg + 15, o.run.memoryModel)) {
        std::fprintf(stderr,
                     "cssamec: unknown memory model '%s' (sc or tso)\n",
                     arg + 15);
        return 2;
      }
    } else if (std::strncmp(arg, "--sarif", 7) == 0 &&
             (arg[7] == '\0' || arg[7] == '=')) {
      o.run.doSarif = o.run.doCsan = true;
      if (arg[7] == '=') o.run.sarifPath = arg + 8;
    } else if (std::strncmp(arg, "--json", 6) == 0 &&
               (arg[6] == '\0' || arg[6] == '=')) {
      o.run.doJson = o.run.doCsan = true;
      if (arg[6] == '=') o.run.jsonPath = arg + 7;
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      o.jobs = static_cast<unsigned>(std::strtoul(arg + 7, nullptr, 10));
    } else if (std::strncmp(arg, "--connect=", 10) == 0) {
      o.connectPath = arg + 10;
    } else if (std::strncmp(arg, "--timeout-ms=", 13) == 0) {
      o.timeoutMs = static_cast<int>(std::strtol(arg + 13, nullptr, 10));
    } else if (std::strcmp(arg, "--run") == 0) {
      o.run.doRun = true;
      if (i + 1 < argc && std::isdigit(static_cast<unsigned char>(
                              argv[i + 1][0])))
        o.run.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg[0] == '-') {
      usage();
    } else {
      files.emplace_back(arg);
    }
  }
  if (files.empty()) usage();
  if (files.size() > 1 &&
      (!o.run.sarifPath.empty() || !o.run.jsonPath.empty())) {
    std::fprintf(stderr,
                 "cssamec: --sarif=FILE/--json=FILE take a single input "
                 "file (outputs would overwrite each other)\n");
    return 2;
  }
  if (!o.connectPath.empty() &&
      (!o.run.sarifPath.empty() || !o.run.jsonPath.empty())) {
    std::fprintf(stderr,
                 "cssamec: --sarif=FILE/--json=FILE cannot be combined "
                 "with --connect (the daemon does not write client "
                 "files)\n");
    return 2;
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  std::vector<std::string> outs(files.size()), errs(files.size());
  std::string fleetHealth;
  std::vector<int> codes(files.size(), 0);
  // char, not bool: vector<bool> packs bits, and parallel workers writing
  // adjacent elements would race on the shared bytes.
  std::vector<char> ran(files.size(), 0);

  if (!o.connectPath.empty()) {
    // Client mode: one connection, files in order. The daemon runs the
    // same driver::runSource this binary would, so the flushed bytes are
    // identical to a local run.
    Expected<support::FdStream> conn = support::connectUnix(o.connectPath);
    if (!conn) {
      std::fprintf(stderr, "cssamec: cannot connect to '%s': %s\n",
                   o.connectPath.c_str(), conn.fault().message.c_str());
      return 1;
    }
    for (std::size_t i = 0; i < files.size(); ++i) {
      if (gInterrupted.load(std::memory_order_relaxed)) break;
      std::string source;
      if (!readFile(files[i], source, errs[i])) {
        codes[i] = 1;
        ran[i] = true;
        continue;
      }
      codes[i] = processRemoteWithRetry(
          buildRequest(files[i], source, o.run, i), *conn, o.connectPath,
          service::kDefaultMaxPayload, o.timeoutMs, outs[i], errs[i]);
      ran[i] = true;
    }
    if (o.run.doStats && conn->valid() &&
        !gInterrupted.load(std::memory_order_relaxed))
      fleetHealth = fleetHealthReport(*conn, service::kDefaultMaxPayload,
                                      o.timeoutMs);
  } else {
    support::ThreadPool pool(o.jobs);
    pool.parallelFor(files.size(), [&](std::size_t i, unsigned) {
      // A signal stops new work; files already being analyzed finish and
      // their buffered output is flushed below.
      if (gInterrupted.load(std::memory_order_relaxed)) return;
      codes[i] = processFile(files[i], o.run, outs[i], errs[i]);
      ran[i] = true;
    });
  }

  int code = 0;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (!ran[i]) continue;
    if (files.size() > 1 && (!outs[i].empty() || !errs[i].empty())) {
      std::fprintf(stderr, "== %s\n", files[i].c_str());
    }
    std::fwrite(outs[i].data(), 1, outs[i].size(), stdout);
    std::fwrite(errs[i].data(), 1, errs[i].size(), stderr);
    if (code == 0) code = codes[i];
  }
  std::fwrite(fleetHealth.data(), 1, fleetHealth.size(), stderr);
  if (gInterrupted.load(std::memory_order_relaxed)) {
    std::fflush(stdout);
    std::fprintf(stderr, "cssamec: interrupted; flushed completed files\n");
    return 130;
  }
  return code;
}
