// cssamec — command line driver for the CSSAME compiler library.
//
// Usage:
//   cssamec [options] <file.cp>
//
// Options:
//   --dump-pfg        print the Parallel Flow Graph as Graphviz DOT
//   --dump-form       print the CSSA/CSSAME form (like the paper's Fig. 3)
//   --no-cssame       stop at plain CSSA (skip the π rewriting)
//   --opt             run CSCC + PDCE + LICM and print the optimized program
//   --run [seed]      execute under the interleaving interpreter
//   --races           run the lock-consistency data race checks
//   --stats           print analysis statistics
//   --csan            run the full static concurrency analyzer
//   --vrange          run the concurrent value-range analysis (CVRA)
//   --sarif[=FILE]    emit all diagnostics as SARIF 2.1.0 (implies --csan);
//                     FILE defaults to stdout
//   --json[=FILE]     emit all diagnostics as compact JSON (implies --csan)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/cssa/form_printer.h"
#include "src/driver/pipeline.h"
#include "src/interp/interp.h"
#include "src/ir/printer.h"
#include "src/mutex/deadlock.h"
#include "src/mutex/races.h"
#include "src/opt/lockstats.h"
#include "src/opt/optimize.h"
#include "src/parser/parser.h"
#include "src/pfg/dot.h"
#include "src/sanalysis/csan.h"
#include "src/sanalysis/sarif.h"
#include "src/sanalysis/vrange.h"

using namespace cssame;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: cssamec [--dump-pfg] [--dump-form] [--no-cssame] "
               "[--opt] [--run [seed]] [--races] [--stats] [--csan] "
               "[--vrange] [--sarif[=FILE]] [--json[=FILE]] <file>\n");
  std::exit(2);
}

/// Writes structured output to `path` ("" = stdout). Exits on I/O failure
/// so CI runs fail loudly instead of uploading an empty log.
void writeOut(const std::string& path, const std::string& text) {
  if (path.empty()) {
    std::printf("%s\n", text.c_str());
    return;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cssamec: cannot write '%s'\n", path.c_str());
    std::exit(1);
  }
  out << text << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool dumpPfg = false, dumpForm = false, cssame = true, doOpt = false;
  bool doRun = false, doRaces = false, doStats = false, doCsan = false;
  bool doSarif = false, doJson = false, doVrange = false;
  std::string sarifPath, jsonPath;
  std::uint64_t seed = 1;
  const char* file = nullptr;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--dump-pfg") == 0) dumpPfg = true;
    else if (std::strcmp(arg, "--dump-form") == 0) dumpForm = true;
    else if (std::strcmp(arg, "--no-cssame") == 0) cssame = false;
    else if (std::strcmp(arg, "--opt") == 0) doOpt = true;
    else if (std::strcmp(arg, "--races") == 0) doRaces = true;
    else if (std::strcmp(arg, "--stats") == 0) doStats = true;
    else if (std::strcmp(arg, "--csan") == 0) doCsan = true;
    else if (std::strcmp(arg, "--vrange") == 0) doVrange = true;
    else if (std::strncmp(arg, "--sarif", 7) == 0 &&
             (arg[7] == '\0' || arg[7] == '=')) {
      doSarif = doCsan = true;
      if (arg[7] == '=') sarifPath = arg + 8;
    } else if (std::strncmp(arg, "--json", 6) == 0 &&
               (arg[6] == '\0' || arg[6] == '=')) {
      doJson = doCsan = true;
      if (arg[6] == '=') jsonPath = arg + 7;
    } else if (std::strcmp(arg, "--run") == 0) {
      doRun = true;
      if (i + 1 < argc && std::isdigit(static_cast<unsigned char>(
                              argv[i + 1][0])))
        seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg[0] == '-') {
      usage();
    } else {
      file = arg;
    }
  }
  if (file == nullptr) usage();

  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "cssamec: cannot open '%s'\n", file);
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  DiagEngine diag;
  ir::Program prog = parser::parseProgram(buf.str(), diag);
  for (const auto& d : diag.diagnostics())
    std::fprintf(stderr, "%s\n", d.str().c_str());
  if (diag.hasErrors()) {
    // Structured modes still get a log (with the parse errors), so CI can
    // upload something meaningful for broken inputs.
    if (doSarif)
      writeOut(sarifPath, sanalysis::toSarif(diag.diagnostics(), file));
    if (doJson)
      writeOut(jsonPath, sanalysis::toJson(diag.diagnostics(), file));
    return 1;
  }

  driver::Compilation c = driver::analyze(prog, {.enableCssame = cssame});
  for (const auto& d : c.diag().diagnostics())
    std::fprintf(stderr, "%s\n", d.str().c_str());

  if (doRaces) {
    DiagEngine raceDiag;
    mutex::detectRaces(c.graph(), c.mhp(), c.mutexes(), raceDiag);
    mutex::detectDeadlocks(c.graph(), c.mhp(), c.mutexes(), raceDiag);
    for (const auto& d : raceDiag.diagnostics())
      std::fprintf(stderr, "%s\n", d.str().c_str());
  }
  // Analyzer diagnostics (csan, then vrange) accumulate into one engine
  // so the SARIF/JSON streams carry every finding.
  DiagEngine toolDiag;
  if (doCsan) {
    const sanalysis::CsanReport report = sanalysis::runCsan(c, toolDiag);
    for (const auto& d : toolDiag.diagnostics())
      std::fprintf(stderr, "%s\n", d.str().c_str());
    std::fprintf(stderr,
                 "csan: %zu finding(s): %zu race(s), %zu inconsistent, "
                 "%zu deadlock(s), %zu self-deadlock(s), %zu leak(s), "
                 "%zu body lint(s), %zu unprotected pi read(s)\n",
                 report.totalFindings(), report.potentialRaces,
                 report.inconsistentLocking,
                 report.deadlocks.abbaPairs + report.deadlocks.orderCycles,
                 report.selfDeadlocks, report.lockLeaks,
                 report.emptyBodies + report.redundantBodies +
                     report.overwideBodies,
                 report.unprotectedPiReads);
  }
  if (doVrange) {
    const std::size_t before = toolDiag.diagnostics().size();
    const sanalysis::VrangeResult vr =
        sanalysis::analyzeValueRanges(c, &toolDiag);
    for (std::size_t i = before; i < toolDiag.diagnostics().size(); ++i)
      std::fprintf(stderr, "%s\n", toolDiag.diagnostics()[i].str().c_str());
    std::fprintf(stderr, "%s\n", vr.stats.str().c_str());
    const std::string mismatch = sanalysis::crossCheckConstants(c, vr);
    if (!mismatch.empty()) {
      std::fprintf(stderr, "vrange: CSCC cross-check FAILED: %s\n",
                   mismatch.c_str());
      return 1;
    }
  }
  if (doSarif || doJson) {
    // One stream in emission order: pipeline warnings, then the analyzers'.
    std::vector<Diagnostic> all = c.diag().diagnostics();
    all.insert(all.end(), toolDiag.diagnostics().begin(),
               toolDiag.diagnostics().end());
    if (doSarif) writeOut(sarifPath, sanalysis::toSarif(all, file));
    if (doJson) writeOut(jsonPath, sanalysis::toJson(all, file));
  }
  if (doStats) {
    std::printf("statements:        %zu\n", prog.size());
    std::printf("pfg nodes:         %zu\n", c.graph().size());
    std::printf("conflict edges:    %zu\n", c.graph().conflicts.size());
    std::printf("mutex bodies:      %zu\n", c.mutexes().bodies().size());
    std::printf("phi terms:         %zu\n", c.ssa().countLivePhis());
    std::printf("pi terms:          %zu\n", c.ssa().countLivePis());
    std::printf("pi conflict args:  %zu\n", c.ssa().countPiConflictArgs());
    if (cssame)
      std::printf("pi args removed:   %zu (pis folded: %zu)\n",
                  c.rewriteStats().argsRemoved, c.rewriteStats().pisRemoved);
    const opt::CriticalSectionReport cs = opt::analyzeCriticalSections(c);
    std::printf("critical sections: %zu stmts locked, %zu lock independent "
                "(%.0f%%)\n",
                cs.totalInterior, cs.totalIndependent,
                100.0 * cs.independentFraction());
    // Force the lazy dataflow caches so the stats are deterministic.
    (void)c.heldLocks();
    (void)c.reaching();
    for (const dataflow::SolveStats& s : c.solverStats())
      std::printf("solver:            %s\n", s.str().c_str());
  }
  if (dumpPfg) std::printf("%s", pfg::toDot(c.graph()).c_str());
  if (dumpForm)
    std::printf("%s", cssa::printForm(c.graph(), c.ssa()).c_str());

  if (doOpt) {
    opt::OptimizeReport report =
        opt::optimizeProgram(prog, {.cssame = cssame});
    std::printf("%s", ir::printProgram(prog).c_str());
    std::fprintf(stderr,
                 "; opt: %zu uses folded, %zu dead removed, %zu hoisted, "
                 "%zu sunk, %d iterations\n",
                 report.constProp.usesReplaced, report.deadCode.stmtsRemoved,
                 report.lockMotion.hoisted, report.lockMotion.sunk,
                 report.iterations);
  }
  if (doRun) {
    interp::RunResult r = interp::run(prog, {.seed = seed});
    for (long long v : r.output) std::printf("%lld\n", v);
    if (!r.completed)
      std::fprintf(stderr, "%s\n",
                   r.deadlocked ? "deadlock" : "step limit exceeded");
    if (r.lockError) std::fprintf(stderr, "lock error\n");
    if (r.assertFailed) std::fprintf(stderr, "assertion failed\n");
  }
  return 0;
}
