// Repair gallery: the fresh-lock fallback. No lock is declared
// anywhere, so the candidate lattice falls through to its last rung —
// declare a fresh lock (named `__fixN` for the first unused N) at
// global scope and wrap both racing increments with it. The verifier
// confirms the race is gone and that the only surviving outputs (2+3
// in either order) were already possible before the patch.
//
//   cssamec --fix repair_fresh_lock.cp
int total;
cobegin {
  thread A {
    total = total + 2;
  }
  thread B {
    total = total + 3;
  }
}
print(total);
