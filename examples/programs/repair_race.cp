// Repair gallery: the existing-lock fix. Thread A follows the locking
// protocol for the shared counter; thread B forgot. The repair engine's
// first candidate extends A's protocol — wrap B's increment with the
// same lock L, the narrowest scope that kills the race without tripping
// the overwide/redundant lock lints.
//
//   cssamec --fix repair_race.cp      applies and verifies the patch
int n;
lock L;
cobegin {
  thread A {
    lock(L);
    n = n + 1;
    unlock(L);
  }
  thread B {
    n = n + 1;
  }
}
print(n);
