// Repair gallery: the structured "no safe fix" answer. The only race is
// the spin-wait handshake on `flag`, and the consumer's side of it is
// the while-loop condition — not a wrappable single-line statement, so
// no candidate in the lattice can protect both ends. The engine returns
// a no-safe-fix envelope (and exit code 1) rather than a mispatched
// program: refusing to guess is part of the verification contract.
//
//   cssamec --fix repair_no_safe_fix.cp   (exit code 1)
int flag;
cobegin {
  thread P {
    flag = 1;
  }
  thread C {
    while (flag == 0) { }
  }
}
print(flag);
