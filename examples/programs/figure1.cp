// Paper Figure 1: T1 reads `a` unprotected while T0 writes it under L —
// csan reports the race with a two-site witness, plus the unprotected
// pi read feeding f(a).
int a, b;
lock L;
a = 1;
b = 2;
cobegin {
  thread T0 {
    lock(L);
    a = a + b;
    unlock(L);
  }
  thread T1 {
    f(a);
    lock(L);
    a = 3;
    b = b + g(a);
    unlock(L);
  }
}
print(a);
print(b);
