// Bakery repaired for TSO: fences publish the doorway (`choosing`) and
// ticket stores before the protocol reads them back, restoring mutual
// exclusion. cssamec --tso reports nothing for this variant.
int choosing0, choosing1, num0, num1, data;
cobegin {
  thread T0 {
    choosing0 = 1;
    fence;
    num0 = num1 + 1;
    choosing0 = 0;
    fence;
    while (choosing1 == 1) { }
    while (num1 != 0 && num1 < num0) { }
    data = data + 1;
    num0 = 0;
  }
  thread T1 {
    choosing1 = 1;
    fence;
    num1 = num0 + 1;
    choosing1 = 0;
    fence;
    while (choosing0 == 1) { }
    while (num0 != 0 && num0 <= num1) { }
    data = data + 1;
    num1 = 0;
  }
}
print(data);
