// A test-and-set style spinlock written with plain loads and stores.
// The acquire store to `taken` can linger in the acquiring thread's
// store buffer while the critical section reads `data`, so cssamec
// --tso flags the taken-store/data-load pair (on top of the SC-level
// test-then-set race csan already reports — the language has no atomic
// read-modify-write, so the acquisition itself is not atomic either).
int taken, data;
cobegin {
  thread T0 {
    while (taken == 1) { }
    taken = 1;
    data = data + 1;
    taken = 0;
  }
  thread T1 {
    while (taken == 1) { }
    taken = 1;
    data = data + 1;
    taken = 0;
  }
}
print(data);
