// Classic ABBA: T0 acquires L then M, T1 acquires M then L in sibling
// cobegin arms — csan reports PotentialDeadlock with both acquisition
// sites as witness notes.
int a, b;
lock L, M;
cobegin {
  thread T0 {
    lock(L);
    lock(M);
    a = a + 1;
    unlock(M);
    unlock(L);
  }
  thread T1 {
    lock(M);
    lock(L);
    b = b + 1;
    unlock(L);
    unlock(M);
  }
}
print(a);
print(b);
