// Lamport's bakery algorithm (two threads, ids breaking ties) from
// plain loads and stores. Under TSO the `choosing` store can still be
// buffered when the ticket read executes, so a thread can pick its
// number while the other's doorway phase is invisible — both may end up
// inside the critical section. cssamec --tso flags the pairs.
int choosing0, choosing1, num0, num1, data;
cobegin {
  thread T0 {
    choosing0 = 1;
    num0 = num1 + 1;
    choosing0 = 0;
    while (choosing1 == 1) { }
    while (num1 != 0 && num1 < num0) { }
    data = data + 1;
    num0 = 0;
  }
  thread T1 {
    choosing1 = 1;
    num1 = num0 + 1;
    choosing1 = 0;
    while (choosing0 == 1) { }
    while (num0 != 0 && num0 <= num1) { }
    data = data + 1;
    num1 = 0;
  }
}
print(data);
