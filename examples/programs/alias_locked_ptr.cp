// The same shared-cell shape as alias_shared_cell.cp, but every store
// through the aliased pointers holds the cell's lock: the deref sites
// still share one alias class, yet the lockset analysis proves mutual
// exclusion and csan stays silent. Run with --points-to to see the
// per-site target sets feeding that verdict.
int x, p, q;
lock m;

p = &x;
q = &x;

cobegin {
  thread writer1 {
    lock(m);
    *p = *p + 1;
    unlock(m);
  }
  thread writer2 {
    lock(m);
    *q = *q + 2;
    unlock(m);
  }
}

print(x);
