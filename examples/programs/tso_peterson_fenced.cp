// Peterson's algorithm repaired for TSO: a fence between the protocol
// stores and the spin-loop reads drains the store buffer, so the flag
// writes are visible before either thread inspects the other's flag.
// cssamec --tso reports nothing, and the explorer finds no critical
// section overlap under either memory model.
int flag0, flag1, turn, data;
cobegin {
  thread T0 {
    flag0 = 1;
    turn = 1;
    fence;
    while (flag1 == 1 && turn == 1) { }
    data = data + 1;
    flag0 = 0;
  }
  thread T1 {
    flag1 = 1;
    turn = 0;
    fence;
    while (flag0 == 1 && turn == 0) { }
    data = data + 1;
    flag1 = 0;
  }
}
print(data);
