// Two threads store through differently named pointers that both hold
// the address of the same shared cell. No symbol is written by two
// threads, so a symbol-keyed race check sees nothing; the points-to
// analysis maps both derefs to x's alias class and csan reports a
// may-alias race with the points-to chain in the witness notes.
//
//   cssamec --points-to --csan alias_shared_cell.cp
int x, p, q;

p = &x;
q = &x;

cobegin {
  thread writer1 {
    *p = 1;
  }
  thread writer2 {
    *q = 2;
  }
}

print(x);
