// Aliased array indexing: i and j are distinct symbols but both
// evaluate to 0, so a[i] and a[j] touch the same cell. Arrays collapse
// to one abstract location per array, so the alias classes key both
// stores to `a` and csan flags the unsynchronized pair; the lock-free
// reader thread races too.
int a[4];
int i, j, sum;

i = 0;
j = i;

cobegin {
  thread writerA {
    a[i] = 1;
  }
  thread writerB {
    a[j] = 2;
  }
  thread reader {
    sum = a[0] + a[1];
  }
}

print(sum);
