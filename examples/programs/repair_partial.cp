// Repair gallery: a partial repair. The data race on `data` is fixable
// (fresh lock around the write and the read), but the handshake race on
// `flag` is not — the consumer's access sits in the while-loop
// *condition*, which is not a single-line statement the patch model can
// wrap. The engine fixes what it can, reports the rest as having no
// safe fix, and exits 1: a partial repair is not a verified program.
//
//   cssamec --fix repair_partial.cp   (exit code 1)
int data, flag;
cobegin {
  thread P {
    data = 42;
    flag = 1;
  }
  thread C {
    while (flag == 0) { }
    print(data);
  }
}
