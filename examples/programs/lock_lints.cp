// Lock-lifecycle and mutex-body lint showcase: a self-deadlocking
// re-acquisition, a leaked lock, an empty body and an over-wide body.
int a, p, q;
lock L, M, N;
cobegin {
  thread T0 {
    lock(L);
    lock(L);      // SelfDeadlock: L already held, locks are not reentrant
    a = a + 1;
    unlock(L);
    unlock(L);
  }
  thread T1 {
    lock(M);      // LockLeak: no unlock(M) on any path
    a = a + 2;
  }
  thread T2 {
    lock(N);
    unlock(N);    // EmptyMutexBody: protects nothing
    lock(N);
    p = 1;        // OverwideMutexBody: p, q are unshared across threads,
    a = a + 3;    // only the a update needs N
    q = 2;
    unlock(N);
  }
}
print(a);
