// Minimal triggers for every CVRA diagnostic (run: cssamec --vrange).
// The entry value of every variable is 0; a is pinned to 1, so the
// branch below is decided and its else side is unreachable, and the
// division by b (still 0) is definite. The racy merge of c only covers
// [0,4]: assert(c > 5) therefore always fails, while assert(c > 2)
// holds on some interleavings and fails on others.
int a, b, d, c;
lock L;
a = 1;
if (a > 0) {
  d = a + 2;
} else {
  d = 9;
}
d = d / b;
cobegin {
  thread T0 { lock(L); c = 2; unlock(L); }
  thread T1 { lock(L); c = 4; unlock(L); }
}
assert(a);
assert(c > 5);
assert(c > 2);
print(d);
print(c);
