// Peterson's mutual exclusion from plain loads and stores — correct
// under sequential consistency, broken under TSO: each thread's flag
// store may still sit in its store buffer while it reads the other
// thread's flag, so both can read 0 and enter the critical section
// together (the store-buffering reordering).
//
//   cssamec --tso              flags the reorderable store/load pairs
//   cssamec --run --memory-model=tso   can print 1 (a lost update);
//   under --memory-model=sc the program always prints 2.
int flag0, flag1, turn, data;
cobegin {
  thread T0 {
    flag0 = 1;
    turn = 1;
    while (flag1 == 1 && turn == 1) { }
    data = data + 1;
    flag0 = 0;
  }
  thread T1 {
    flag1 = 1;
    turn = 0;
    while (flag0 == 1 && turn == 0) { }
    data = data + 1;
    flag1 = 0;
  }
}
print(data);
