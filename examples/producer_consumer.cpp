// Producer/consumer with event ordering + mutual exclusion: demonstrates
// that the analysis understands both synchronization kinds at once.
// The producer fills a buffer, posts event `ready`; the consumer waits,
// then drains under the same lock. The set/wait ordering lets the MHP
// analysis drop conflict edges (the consumer's reads can only see the
// producer's writes), and CSSAME trims the π terms that remain.
//
//   $ ./producer_consumer
#include <cstdio>

#include "src/cssa/form_printer.h"
#include "src/driver/pipeline.h"
#include "src/interp/interp.h"
#include "src/ir/printer.h"
#include "src/opt/optimize.h"
#include "src/parser/parser.h"

using namespace cssame;

namespace {

const char* kSource = R"(
int buf0, buf1, produced, consumed;
lock L;
event ready;

cobegin {
  thread producer {
    lock(L);
    buf0 = 11;
    buf1 = 22;
    produced = 2;
    unlock(L);
    set(ready);
  }
  thread consumer {
    int sum;
    wait(ready);
    lock(L);
    sum = buf0 + buf1;
    consumed = produced;
    unlock(L);
    print(sum);
  }
}
print(produced);
print(consumed);
)";

}  // namespace

int main() {
  ir::Program prog = parser::parseOrDie(kSource);
  std::printf("=== Source ===\n%s\n", ir::printProgram(prog).c_str());

  driver::Compilation c = driver::analyze(prog);
  std::printf("=== Analysis ===\n");
  std::printf("conflict edges:  %zu\n", c.graph().conflicts.size());
  std::printf("dsync edges:     %zu (set/wait pairs)\n",
              c.graph().dsyncEdges.size());
  std::printf("mutex edges:     %zu\n", c.graph().mutexEdges.size());
  std::printf("pi terms:        %zu after CSSAME\n",
              c.ssa().countLivePis());
  for (const auto& d : c.diag().diagnostics())
    std::printf("  %s\n", d.str().c_str());

  std::printf("\n=== CSSAME form ===\n%s\n",
              cssa::printForm(c.graph(), c.ssa()).c_str());

  // The wait(ready) ordering makes the consumer's reads see exactly the
  // producer's writes, so constants flow across threads.
  opt::OptimizeReport report = opt::optimizeProgram(prog);
  std::printf("=== Optimized ===\n%s\n", ir::printProgram(prog).c_str());
  std::printf("(constants folded: %zu uses; dead statements removed: %zu)\n\n",
              report.constProp.usesReplaced, report.deadCode.stmtsRemoved);

  std::printf("=== Execution ===\n");
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    interp::RunResult r = interp::run(prog, {.seed = seed});
    std::printf("seed %llu:", static_cast<unsigned long long>(seed));
    for (long long v : r.output) std::printf(" %lld", v);
    std::printf("%s\n", r.completed ? "" : "  [did not complete]");
  }
  return 0;
}
