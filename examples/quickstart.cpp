// Quickstart: the paper's Figure 1 program, built with the programmatic
// IR builder, analyzed end to end, optimized, and executed.
//
//   $ ./quickstart
//
// Walks through every layer of the library:
//   1. build an explicitly parallel program (cobegin + lock/unlock),
//   2. run the analysis pipeline (PFG → mutex structures → CSSAME),
//   3. inspect how mutual exclusion shrinks the π terms,
//   4. optimize (CSCC + PDCE + LICM),
//   5. execute under the interleaving interpreter.
#include <cstdio>

#include "src/cssa/form_printer.h"
#include "src/driver/pipeline.h"
#include "src/interp/interp.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"
#include "src/opt/optimize.h"

using namespace cssame;

int main() {
  // --- 1. Build Figure 1: two threads sharing `a` and `b` under lock L.
  ir::ProgramBuilder b;
  const SymbolId a = b.var("a");
  const SymbolId bb = b.var("b");
  const SymbolId L = b.lock("L");
  const SymbolId f = b.func("f");
  const SymbolId g = b.func("g");

  b.assign(a, b.lit(1));
  b.assign(bb, b.lit(2));
  b.cobegin({
      [&] {  // T0
        b.lockStmt(L);
        b.assign(a, b.add(b.ref(a), b.ref(bb)));
        b.unlockStmt(L);
      },
      [&] {  // T1
        b.callStmt(f, {});
        b.lockStmt(L);
        b.assign(a, b.lit(3));  // kills T0's assignment for the next use
        b.assign(bb, b.add(b.ref(bb), b.call(g, b.ref(a))));
        b.unlockStmt(L);
      },
  });
  b.print(b.ref(a));
  b.print(b.ref(bb));
  ir::Program prog = b.take();

  std::printf("=== Source ===\n%s\n", ir::printProgram(prog).c_str());

  // --- 2./3. Analyze twice: plain CSSA vs CSSAME.
  {
    driver::Compilation cssaOnly =
        driver::analyze(prog, {.enableCssame = false});
    driver::Compilation cssame = driver::analyze(prog);
    std::printf("=== Analysis ===\n");
    std::printf("mutex bodies found:       %zu\n",
                cssame.mutexes().bodies().size());
    std::printf("pi terms under CSSA:      %zu (%zu conflict args)\n",
                cssaOnly.ssa().countLivePis(),
                cssaOnly.ssa().countPiConflictArgs());
    std::printf("pi terms under CSSAME:    %zu (%zu conflict args)\n",
                cssame.ssa().countLivePis(),
                cssame.ssa().countPiConflictArgs());
    std::printf("pi args removed by A.3:   %zu\n\n",
                cssame.rewriteStats().argsRemoved);
    std::printf("=== CSSAME form ===\n%s\n",
                cssa::printForm(cssame.graph(), cssame.ssa()).c_str());
  }

  // --- 4. Optimize: constants propagate through the lock-killed uses.
  opt::OptimizeReport report = opt::optimizeProgram(prog);
  std::printf("=== Optimized (%d iterations) ===\n%s\n", report.iterations,
              ir::printProgram(prog).c_str());
  std::printf("pass stats: %zu uses folded, %zu dead stmts removed, "
              "%zu stmts sunk past unlock\n\n",
              report.constProp.usesReplaced, report.deadCode.stmtsRemoved,
              report.lockMotion.sunk);

  // --- 5. Execute a few interleavings.
  std::printf("=== Execution (3 seeds) ===\n");
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    interp::RunResult r = interp::run(prog, {.seed = seed});
    std::printf("seed %llu:", static_cast<unsigned long long>(seed));
    for (long long v : r.output) std::printf(" %lld", v);
    std::printf("  (%llu steps, %llu lock-held steps)\n",
                static_cast<unsigned long long>(r.steps),
                static_cast<unsigned long long>(r.totalHoldSteps()));
  }
  return 0;
}
