// SPMD phases: a two-phase parallel computation built from `doall` and
// `barrier` — the two constructs this library adds on top of the paper's
// core (Section 6 mentions doall support; Section 7 lists barriers as
// future work).
//
// Phase 1: every worker writes its slot of a shared array (modelled as
// scalars). Phase 2 (after the barrier): every worker reads its
// neighbour's slot. The barrier-phase MHP refinement proves the
// cross-phase accesses race-free, and the exhaustive schedule explorer
// confirms the program has exactly one possible output.
//
//   $ ./phases
#include <cstdio>

#include "src/driver/pipeline.h"
#include "src/interp/explore.h"
#include "src/ir/printer.h"
#include "src/mutex/races.h"
#include "src/opt/lockstats.h"
#include "src/opt/optimize.h"
#include "src/parser/parser.h"

using namespace cssame;

namespace {

const char* kSource = R"(
int s0, s1, s2, s3;
int r0, r1, r2, r3;

cobegin {
  thread w0 { s0 = 10; barrier; r0 = s1; }
  thread w1 { s1 = 11; barrier; r1 = s2; }
  thread w2 { s2 = 12; barrier; r2 = s3; }
  thread w3 { s3 = 13; barrier; r3 = s0; }
}
print(r0);
print(r1);
print(r2);
print(r3);
)";

}  // namespace

int main() {
  ir::Program prog = parser::parseOrDie(kSource);
  std::printf("=== Source ===\n%s\n", ir::printProgram(prog).c_str());

  driver::Compilation c = driver::analyze(prog);
  DiagEngine raceDiag;
  mutex::RaceReport races =
      mutex::detectRaces(c.graph(), c.mhp(), c.mutexes(), raceDiag);
  std::printf("=== Analysis ===\n");
  std::printf("conflict edges (dataflow):   %zu\n",
              c.graph().conflicts.size());
  std::printf("potential races reported:    %zu  (barrier phases prove the "
              "cross-phase accesses ordered)\n",
              races.potentialRaces);

  std::printf("\n=== Exhaustive schedule exploration ===\n");
  interp::ExploreResult all = interp::exploreAllSchedules(prog);
  std::printf("states explored: %llu, complete: %s\n",
              static_cast<unsigned long long>(all.statesExplored),
              all.complete ? "yes" : "no");
  std::printf("distinct outputs: %zu\n", all.outputs.size());
  for (const auto& out : all.outputs) {
    std::printf(" ");
    for (long long v : out) std::printf(" %lld", v);
    std::printf("\n");
  }

  // Optimization must preserve the single outcome.
  opt::optimizeProgram(prog);
  interp::ExploreResult after = interp::exploreAllSchedules(prog);
  std::printf("\n=== After optimization ===\n%s\n",
              ir::printProgram(prog).c_str());
  std::printf("outputs unchanged: %s\n",
              after.outputs == all.outputs ? "yes" : "NO");
  return after.outputs == all.outputs ? 0 : 1;
}
