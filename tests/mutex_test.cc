// Unit tests for mutex structure identification (Algorithm A.1) and its
// Section 6 warnings.
#include <gtest/gtest.h>

#include "src/driver/pipeline.h"
#include "src/parser/parser.h"

namespace cssame::mutex {
namespace {

driver::Compilation compile(ir::Program& p) {
  return driver::analyze(p, {.warnings = true});
}

TEST(MutexBodies, SimpleBody) {
  ir::Program p = parser::parseOrDie(R"(
    int a; lock L;
    lock(L);
    a = 1;
    unlock(L);
  )");
  driver::Compilation c = compile(p);
  ASSERT_EQ(c.mutexes().bodies().size(), 1u);
  const MutexBody& b = c.mutexes().bodies()[0];
  EXPECT_TRUE(b.wellFormed);
  EXPECT_EQ(c.graph().node(b.lockNode).kind, pfg::NodeKind::Lock);
  EXPECT_EQ(c.graph().node(b.unlockNode).kind, pfg::NodeKind::Unlock);
  // Definition 3: n ∉ B, x ∈ B, interior nodes ∈ B.
  EXPECT_FALSE(b.members.test(b.lockNode.index()));
  EXPECT_TRUE(b.members.test(b.unlockNode.index()));
  EXPECT_EQ(c.diag().diagnostics().size(), 0u);
}

TEST(MutexBodies, BranchInsideBodyIsFine) {
  ir::Program p = parser::parseOrDie(R"(
    int a; lock L;
    lock(L);
    if (a > 0) { a = 1; } else { a = 2; }
    unlock(L);
  )");
  driver::Compilation c = compile(p);
  ASSERT_EQ(c.mutexes().bodies().size(), 1u);
  EXPECT_TRUE(c.mutexes().bodies()[0].wellFormed);
  // All four branch nodes are members.
  EXPECT_GE(c.mutexes().bodies()[0].members.count(), 4u);
}

TEST(MutexBodies, LoopInsideBody) {
  ir::Program p = parser::parseOrDie(R"(
    int a; lock L;
    lock(L);
    while (a < 5) { a = a + 1; }
    unlock(L);
  )");
  driver::Compilation c = compile(p);
  ASSERT_EQ(c.mutexes().bodies().size(), 1u);
  EXPECT_TRUE(c.mutexes().bodies()[0].wellFormed);
  EXPECT_EQ(c.diag().countOf(DiagCode::UnmatchedLock), 0u);
}

TEST(MutexBodies, ConditionalUnlockYieldsNoBody) {
  ir::Program p = parser::parseOrDie(R"(
    int a, c; lock L;
    lock(L);
    if (c > 0) { unlock(L); } else { unlock(L); }
  )");
  driver::Compilation c = compile(p);
  EXPECT_TRUE(c.mutexes().bodies().empty());
  EXPECT_EQ(c.diag().countOf(DiagCode::UnmatchedLock), 1u);
  EXPECT_EQ(c.diag().countOf(DiagCode::UnmatchedUnlock), 2u);
}

TEST(MutexBodies, SequentialBodiesSameLock) {
  ir::Program p = parser::parseOrDie(R"(
    int a; lock L;
    lock(L); a = 1; unlock(L);
    lock(L); a = 2; unlock(L);
  )");
  driver::Compilation c = compile(p);
  // Candidates: (l1,u1),(l1,u2),(l2,u2) by dominance; (l1,u2) is
  // ill-formed (contains u1 and l2). Two well-formed bodies remain —
  // and because every delimiter still bounds a real body, the discarded
  // cross pair is structure noise, not a warning: sequential regions of
  // the same lock are a perfectly healthy shape (and the one every
  // wrap-with-lock repair produces).
  std::size_t wellFormed = 0;
  for (const MutexBody& b : c.mutexes().bodies()) wellFormed += b.wellFormed;
  EXPECT_EQ(wellFormed, 2u);
  EXPECT_EQ(c.diag().countOf(DiagCode::IllFormedMutexBody), 0u);
  // All lock/unlock nodes participate in SOME well-formed body: no
  // unmatched warnings.
  EXPECT_EQ(c.diag().countOf(DiagCode::UnmatchedLock), 0u);
  EXPECT_EQ(c.diag().countOf(DiagCode::UnmatchedUnlock), 0u);
}

TEST(MutexBodies, NestedSameLockIsIllFormed) {
  ir::Program p = parser::parseOrDie(R"(
    int a; lock L;
    lock(L);
    lock(L);
    a = 1;
    unlock(L);
    unlock(L);
  )");
  driver::Compilation c = compile(p);
  std::size_t wellFormed = 0;
  for (const MutexBody& b : c.mutexes().bodies()) wellFormed += b.wellFormed;
  // inner (l2,u1) is well-formed; outer (l1,u2) contains l2/u1. Pairs
  // (l1,u1),(l2,u2) are also candidates and ill-formed.
  EXPECT_EQ(wellFormed, 1u);
  EXPECT_GE(c.diag().countOf(DiagCode::IllFormedMutexBody), 2u);
}

TEST(MutexBodies, NestedDifferentLocksBothWellFormed) {
  ir::Program p = parser::parseOrDie(R"(
    int a; lock L, M;
    lock(L);
    lock(M);
    a = 1;
    unlock(M);
    unlock(L);
  )");
  driver::Compilation c = compile(p);
  ASSERT_EQ(c.mutexes().bodies().size(), 2u);
  for (const MutexBody& b : c.mutexes().bodies())
    EXPECT_TRUE(b.wellFormed);
  EXPECT_EQ(c.mutexes().lockVars().size(), 2u);
}

TEST(MutexBodies, PerLockStructures) {
  ir::Program p = parser::parseOrDie(R"(
    int a; lock L, M;
    lock(L); a = 1; unlock(L);
    lock(M); a = 2; unlock(M);
  )");
  driver::Compilation c = compile(p);
  const SymbolId L = p.symbols.lookup("L");
  const SymbolId M = p.symbols.lookup("M");
  EXPECT_EQ(c.mutexes().structureOf(L).size(), 1u);
  EXPECT_EQ(c.mutexes().structureOf(M).size(), 1u);
  EXPECT_TRUE(c.mutexes().structureOf(p.symbols.lookup("a")).empty());
}

TEST(MutexBodies, MembershipQueries) {
  ir::Program p = parser::parseOrDie(R"(
    int a, b; lock L;
    a = 0;
    lock(L);
    a = 1;
    unlock(L);
    b = 2;
  )");
  driver::Compilation c = compile(p);
  const SymbolId L = p.symbols.lookup("L");

  NodeId inside, outside;
  for (const pfg::Node& n : c.graph().nodes()) {
    for (const ir::Stmt* s : n.stmts) {
      if (s->kind != ir::StmtKind::Assign) continue;
      if (s->expr->intValue == 1) inside = n.id;
      if (s->expr->intValue == 2) outside = n.id;
    }
  }
  EXPECT_TRUE(c.mutexes().wellFormedBodyContaining(inside, L).valid());
  EXPECT_FALSE(c.mutexes().wellFormedBodyContaining(outside, L).valid());
  EXPECT_EQ(c.mutexes().bodiesContaining(inside).size(), 1u);
  EXPECT_TRUE(c.mutexes().bodiesContaining(outside).empty());
}

TEST(MutexBodies, LockWithoutUnlockWarns) {
  ir::Program p = parser::parseOrDie(R"(
    int a; lock L;
    lock(L);
    a = 1;
  )");
  driver::Compilation c = compile(p);
  EXPECT_TRUE(c.mutexes().bodies().empty());
  EXPECT_EQ(c.diag().countOf(DiagCode::UnmatchedLock), 1u);
}

TEST(MutexBodies, UnlockWithoutLockWarns) {
  ir::Program p = parser::parseOrDie(R"(
    int a; lock L;
    a = 1;
    unlock(L);
  )");
  driver::Compilation c = compile(p);
  EXPECT_TRUE(c.mutexes().bodies().empty());
  EXPECT_EQ(c.diag().countOf(DiagCode::UnmatchedUnlock), 1u);
}

TEST(MutexBodies, BodiesPerThreadInCobegin) {
  ir::Program p = parser::parseOrDie(R"(
    int a; lock L;
    cobegin {
      thread { lock(L); a = 1; unlock(L); }
      thread { lock(L); a = 2; unlock(L); }
      thread { lock(L); a = 3; unlock(L); }
    }
  )");
  driver::Compilation c = compile(p);
  // Cross-thread pairs never satisfy DOM/PDOM: exactly 3 bodies.
  EXPECT_EQ(c.mutexes().bodies().size(), 3u);
  for (const MutexBody& b : c.mutexes().bodies())
    EXPECT_TRUE(b.wellFormed);
}

}  // namespace
}  // namespace cssame::mutex
