// Unit tests for the synthetic workload generators.
#include <gtest/gtest.h>

#include "src/interp/interp.h"
#include "src/ir/printer.h"
#include "src/ir/verify.h"
#include "src/parser/parser.h"
#include "src/workload/generator.h"
#include "src/workload/paper_programs.h"

namespace cssame::workload {
namespace {

TEST(Generator, DeterministicPerSeed) {
  GeneratorConfig cfg;
  cfg.seed = 5;
  ir::Program a = generateRandom(cfg);
  ir::Program b = generateRandom(cfg);
  EXPECT_EQ(ir::printProgram(a), ir::printProgram(b));
  cfg.seed = 6;
  ir::Program c = generateRandom(cfg);
  EXPECT_NE(ir::printProgram(a), ir::printProgram(c));
}

TEST(Generator, ProducesValidIr) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GeneratorConfig cfg;
    cfg.seed = seed;
    cfg.useEvents = seed % 2 == 0;
    ir::Program p = generateRandom(cfg);
    EXPECT_TRUE(ir::verify(p).empty()) << "seed " << seed;
    EXPECT_GT(p.size(), 10u);
  }
}

TEST(Generator, DeterminateModeIsScheduleIndependent) {
  GeneratorConfig cfg;
  cfg.seed = 9;
  cfg.determinate = true;
  ir::Program p = generateRandom(cfg);
  std::vector<long long> first;
  for (const interp::RunResult& r : interp::runManySeeds(p, 12)) {
    ASSERT_TRUE(r.completed);
    ASSERT_FALSE(r.deadlocked);
    if (first.empty()) first = r.output;
    EXPECT_EQ(r.output, first);
  }
}

TEST(Generator, RoundTripsThroughParser) {
  GeneratorConfig cfg;
  cfg.seed = 3;
  ir::Program p = generateRandom(cfg);
  const std::string text = ir::printProgram(p);
  ir::Program q = parser::parseOrDie(text);
  EXPECT_EQ(ir::printProgram(q), text);
}

TEST(LockStructured, RespectsShape) {
  ir::Program p = makeLockStructured(3, 4, 5, 0.8, 1);
  EXPECT_TRUE(ir::verify(p).empty());
  std::size_t locks = 0, threads = 0;
  ir::forEachStmt(p.body, [&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::Lock) ++locks;
    if (s.kind == ir::StmtKind::Cobegin) threads = s.threads.size();
  });
  EXPECT_EQ(locks, 3u * 4u);
  EXPECT_EQ(threads, 3u);
}

TEST(LockStructured, RunsToCompletion) {
  ir::Program p = makeLockStructured(4, 3, 4, 0.5, 2);
  for (const interp::RunResult& r : interp::runManySeeds(p, 5)) {
    EXPECT_TRUE(r.completed);
    EXPECT_FALSE(r.lockError);
  }
}

TEST(Bank, BalancesAreConserved) {
  ir::Program p = makeBank(3, 3, 4, 7);
  // Deposits are additive under one lock: the account total is the same
  // in every interleaving.
  long long firstTotal = -1;
  for (const interp::RunResult& r : interp::runManySeeds(p, 10)) {
    ASSERT_TRUE(r.completed);
    // Last 3 outputs are the account balances.
    ASSERT_GE(r.output.size(), 3u);
    long long total = 0;
    for (std::size_t i = r.output.size() - 3; i < r.output.size(); ++i)
      total += r.output[i];
    if (firstTotal < 0) firstTotal = total;
    EXPECT_EQ(total, firstTotal);
  }
}

TEST(PaperPrograms, AllParse) {
  EXPECT_TRUE(ir::verify(parser::parseOrDie(figure1Source())).empty());
  EXPECT_TRUE(ir::verify(parser::parseOrDie(figure2Source())).empty());
  EXPECT_TRUE(ir::verify(parser::parseOrDie(figure5aSource())).empty());
}

}  // namespace
}  // namespace cssame::workload
