// Concurrency regression for driver::Compilation's lazily-computed
// analysis caches.
//
// The analysis service shares one Compilation between concurrent
// requests: a csan request and a vrange request for the same source hit
// the same cached artifact and both force heldLocks()/reaching() on
// first use. Before lazyMutex_ those accessors were check-then-build on
// plain unique_ptrs — two threads would race the build and one would use
// a half-constructed solver. This test drives every lazy accessor from
// many threads at once; run under ThreadSanitizer (the `tsan` CI job) it
// is the regression proof, and under the plain build it still checks
// that all threads observe one consistent solve.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/driver/pipeline.h"
#include "src/parser/parser.h"

namespace cssame {
namespace {

constexpr const char* kSource = R"(
  int x = 0, y = 0;
  lock L;
  cobegin {
    thread T0 {
      lock(L); x = x + 1; unlock(L);
      y = 2;
    }
    thread T1 {
      lock(L); x = x * y; unlock(L);
      print(x);
    }
  }
  print(y);
)";

TEST(DriverConcurrent, LazyAccessorsAreThreadSafe) {
  ir::Program prog = parser::parseOrDie(kSource);
  const driver::Compilation c = driver::analyze(prog);

  constexpr unsigned kThreads = 8;
  constexpr unsigned kRounds = 25;
  std::vector<std::size_t> heldSizes(kThreads, 0);
  std::vector<std::size_t> reachingStats(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &heldSizes, &reachingStats, t] {
      for (unsigned round = 0; round < kRounds; ++round) {
        // The two lazy solves plus every accessor that reads the shared
        // lazy state, interleaved with the always-ready structures.
        heldSizes[t] = c.heldLocks().stats().iterations;
        reachingStats[t] = c.reaching().stats.iterations;
        (void)c.solverStats();
        (void)c.phaseTimes();
        (void)c.sites();
        (void)c.graph().size();
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // Exactly one solve happened: every thread saw the same iteration
  // counts, and the phase table gained exactly the two lazy entries.
  for (unsigned t = 1; t < kThreads; ++t) {
    EXPECT_EQ(heldSizes[t], heldSizes[0]);
    EXPECT_EQ(reachingStats[t], reachingStats[0]);
  }
  std::size_t lazyPhases = 0;
  for (const support::PhaseTime& p : c.phaseTimes())
    if (p.name == std::string("heldlocks") ||
        p.name == std::string("reaching"))
      ++lazyPhases;
  EXPECT_EQ(lazyPhases, 2u);
  EXPECT_EQ(c.solverStats().size(), 2u);
}

TEST(DriverConcurrent, PhaseTimesSnapshotIsStable) {
  ir::Program prog = parser::parseOrDie(kSource);
  const driver::Compilation c = driver::analyze(prog);

  // One thread repeatedly snapshots the phase table while another forces
  // the lazy solves that append to it. The snapshot-by-value contract
  // means the reader's vector never changes under it.
  std::thread reader([&c] {
    for (int i = 0; i < 200; ++i) {
      const std::vector<support::PhaseTime> snap = c.phaseTimes();
      EXPECT_GE(snap.size(), 1u);
      for (const support::PhaseTime& p : snap) EXPECT_FALSE(p.name.empty());
    }
  });
  std::thread forcer([&c] {
    (void)c.heldLocks();
    (void)c.reaching();
  });
  reader.join();
  forcer.join();
  EXPECT_GE(c.phaseTimes().size(), 2u);
}

}  // namespace
}  // namespace cssame
