// Unit tests for the IR layer: expressions, statements, the builder,
// cloning, the verifier, the parent map and the printer.
#include <gtest/gtest.h>

#include "src/ir/builder.h"
#include "src/ir/parent_map.h"
#include "src/ir/printer.h"
#include "src/ir/verify.h"
#include "src/parser/parser.h"

namespace cssame::ir {
namespace {

TEST(Expr, Factories) {
  ExprPtr i = makeInt(42);
  EXPECT_EQ(i->kind, ExprKind::IntConst);
  EXPECT_EQ(i->intValue, 42);

  ExprPtr v = makeVar(SymbolId{3});
  EXPECT_EQ(v->kind, ExprKind::VarRef);
  EXPECT_EQ(v->var, SymbolId{3});

  ExprPtr b = makeBinary(BinOp::Add, makeInt(1), makeInt(2));
  ASSERT_EQ(b->operands.size(), 2u);
  EXPECT_EQ(b->binop, BinOp::Add);

  ExprPtr u = makeUnary(UnOp::Neg, makeInt(5));
  ASSERT_EQ(u->operands.size(), 1u);
}

TEST(Expr, EvalBinOpTotality) {
  // Division and modulo by zero are total (yield 0) by design, so the
  // interpreter and constant folder agree.
  EXPECT_EQ(evalBinOp(BinOp::Div, 7, 0), 0);
  EXPECT_EQ(evalBinOp(BinOp::Mod, 7, 0), 0);
  EXPECT_EQ(evalBinOp(BinOp::Div, 7, 2), 3);
  EXPECT_EQ(evalBinOp(BinOp::Mod, 7, 2), 1);
}

TEST(Expr, EvalComparisons) {
  EXPECT_EQ(evalBinOp(BinOp::Lt, 1, 2), 1);
  EXPECT_EQ(evalBinOp(BinOp::Ge, 1, 2), 0);
  EXPECT_EQ(evalBinOp(BinOp::Eq, 5, 5), 1);
  EXPECT_EQ(evalBinOp(BinOp::Ne, 5, 5), 0);
  EXPECT_EQ(evalBinOp(BinOp::And, 2, 0), 0);
  EXPECT_EQ(evalBinOp(BinOp::Or, 0, 3), 1);
  EXPECT_EQ(evalUnOp(UnOp::Not, 0), 1);
  EXPECT_EQ(evalUnOp(UnOp::Neg, 5), -5);
}

TEST(Expr, EvalOverflowWraps) {
  // Signed overflow is defined (wraps via unsigned) — no UB in folding.
  const long long big = std::numeric_limits<long long>::max();
  EXPECT_EQ(evalBinOp(BinOp::Add, big, 1),
            std::numeric_limits<long long>::min());
}

TEST(Expr, CloneIsDeepAndEqual) {
  ExprPtr e = makeBinary(BinOp::Mul, makeVar(SymbolId{1}),
                         makeBinary(BinOp::Add, makeInt(2), makeInt(3)));
  ExprPtr c = cloneExpr(*e);
  EXPECT_TRUE(exprEquals(*e, *c));
  EXPECT_NE(e.get(), c.get());
  EXPECT_NE(e->operands[1].get(), c->operands[1].get());
  c->operands[1]->operands[0]->intValue = 99;
  EXPECT_FALSE(exprEquals(*e, *c));
  EXPECT_EQ(e->operands[1]->operands[0]->intValue, 2);
}

TEST(Expr, ContainsCall) {
  ExprPtr noCall = makeBinary(BinOp::Add, makeInt(1), makeVar(SymbolId{0}));
  EXPECT_FALSE(containsCall(*noCall));
  std::vector<ExprPtr> args;
  args.push_back(makeInt(1));
  ExprPtr withCall =
      makeBinary(BinOp::Add, makeCall(SymbolId{2}, std::move(args)),
                 makeInt(0));
  EXPECT_TRUE(containsCall(*withCall));
}

TEST(Builder, BuildsNestedStructure) {
  ProgramBuilder b;
  const SymbolId x = b.var("x");
  b.assign(x, b.lit(0));
  b.if_(b.gt(b.ref(x), b.lit(1)), [&] { b.assign(x, b.lit(2)); },
        [&] { b.assign(x, b.lit(3)); });
  b.while_(b.lt(b.ref(x), b.lit(10)),
           [&] { b.assign(x, b.add(b.ref(x), b.lit(1))); });
  b.cobegin({[&] { b.print(b.ref(x)); }, [&] { b.print(b.lit(1)); }});
  Program p = b.take();

  EXPECT_TRUE(verify(p).empty());
  ASSERT_EQ(p.body.size(), 4u);
  EXPECT_EQ(p.body[1]->kind, StmtKind::If);
  EXPECT_EQ(p.body[1]->thenBody.size(), 1u);
  EXPECT_EQ(p.body[1]->elseBody.size(), 1u);
  EXPECT_EQ(p.body[2]->kind, StmtKind::While);
  EXPECT_EQ(p.body[3]->threads.size(), 2u);
}

TEST(Builder, StmtIdsAreUniqueAndDense) {
  ProgramBuilder b;
  const SymbolId x = b.var("x");
  for (int i = 0; i < 10; ++i) b.assign(x, b.lit(i));
  Program p = b.take();
  EXPECT_EQ(p.numStmtIds(), 10u);
  for (std::size_t i = 0; i < p.body.size(); ++i)
    EXPECT_EQ(p.body[i]->id, StmtId{static_cast<StmtId::value_type>(i)});
}

TEST(Program, CloneDeepCopies) {
  ProgramBuilder b;
  const SymbolId x = b.var("x");
  b.assign(x, b.lit(1));
  b.cobegin({[&] { b.assign(x, b.lit(2)); }});
  Program p = b.take();
  Program q = p.clone();
  ASSERT_EQ(q.size(), p.size());
  // Same statement ids, different objects.
  EXPECT_EQ(q.body[0]->id, p.body[0]->id);
  EXPECT_NE(q.body[0].get(), p.body[0].get());
  q.body[0]->expr->intValue = 99;
  EXPECT_EQ(p.body[0]->expr->intValue, 1);
}

TEST(Program, CountStmtsRecurses) {
  ProgramBuilder b;
  const SymbolId x = b.var("x");
  b.if_(b.lit(1), [&] {
    b.assign(x, b.lit(1));
    b.assign(x, b.lit(2));
  });
  Program p = b.take();
  EXPECT_EQ(p.size(), 3u);  // if + 2 assigns
}

TEST(Verify, CatchesBadSyncSymbol) {
  ProgramBuilder b;
  const SymbolId x = b.var("x");
  Program p = b.take();
  auto s = p.newStmt(StmtKind::Lock);
  s->sync = x;  // a variable, not a lock
  p.body.push_back(std::move(s));
  const auto problems = verify(p);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("non-lock"), std::string::npos);
}

TEST(Verify, CatchesMissingExpr) {
  ProgramBuilder b;
  b.var("x");
  Program p = b.take();
  p.body.push_back(p.newStmt(StmtKind::Print));  // no expr
  EXPECT_FALSE(verify(p).empty());
}

TEST(Verify, CatchesDuplicateIds) {
  ProgramBuilder b;
  const SymbolId x = b.var("x");
  b.assign(x, b.lit(1));
  Program p = b.take();
  auto dup = std::make_unique<Stmt>();
  dup->id = p.body[0]->id;
  dup->kind = StmtKind::Assign;
  dup->lhs = x;
  dup->expr = makeInt(2);
  p.body.push_back(std::move(dup));
  const auto problems = verify(p);
  ASSERT_FALSE(problems.empty());
}

TEST(Verify, CatchesEmptyCobegin) {
  ProgramBuilder b;
  b.var("x");
  Program p = b.take();
  p.body.push_back(p.newStmt(StmtKind::Cobegin));
  EXPECT_FALSE(verify(p).empty());
}

TEST(ParentMap, FindsOwningLists) {
  ProgramBuilder b;
  const SymbolId x = b.var("x");
  Stmt* outer = b.if_(b.lit(1), [&] { b.assign(x, b.lit(2)); });
  Program p = b.take();
  ParentMap map(p);
  Stmt* inner = p.body[0]->thenBody[0].get();
  EXPECT_EQ(map.info(inner).parent, outer);
  EXPECT_EQ(map.info(inner).list, &p.body[0]->thenBody);
  EXPECT_EQ(map.info(outer).parent, nullptr);
  EXPECT_EQ(map.indexOf(outer), 0u);
}

TEST(ParentMap, ExtractRemoves) {
  ProgramBuilder b;
  const SymbolId x = b.var("x");
  b.assign(x, b.lit(1));
  Stmt* second = b.assign(x, b.lit(2));
  Program p = b.take();
  ParentMap map(p);
  StmtPtr owned = map.extract(second);
  EXPECT_EQ(owned.get(), second);
  EXPECT_EQ(p.body.size(), 1u);
}

TEST(Printer, MinimalParens) {
  ProgramBuilder b;
  const SymbolId x = b.var("x");
  // x = (1 + 2) * 3 needs parens; x = 1 + 2 * 3 must not add them.
  b.assign(x, b.mul(b.add(b.lit(1), b.lit(2)), b.lit(3)));
  b.assign(x, b.add(b.lit(1), b.mul(b.lit(2), b.lit(3))));
  Program p = b.take();
  const std::string text = printProgram(p);
  EXPECT_NE(text.find("x = (1 + 2) * 3"), std::string::npos) << text;
  EXPECT_NE(text.find("x = 1 + 2 * 3"), std::string::npos) << text;
}

TEST(Printer, NonAssociativeChains) {
  // 10 - (4 - 3) must keep its parens when re-parsed left-associatively.
  ProgramBuilder b;
  const SymbolId x = b.var("x");
  b.assign(x, b.sub(b.lit(10), b.sub(b.lit(4), b.lit(3))));
  Program p = b.take();
  const std::string text = printProgram(p);
  EXPECT_NE(text.find("x = 10 - (4 - 3)"), std::string::npos) << text;
}

TEST(Printer, UniquesDuplicateNames) {
  ProgramBuilder b;
  const SymbolId a1 = b.var("dup");
  const SymbolId a2 = b.var("dup");
  b.assign(a1, b.lit(1));
  b.assign(a2, b.lit(2));
  Program p = b.take();
  const std::string text = printProgram(p);
  EXPECT_NE(text.find("int dup;"), std::string::npos);
  EXPECT_NE(text.find("int dup_2;"), std::string::npos);
  EXPECT_NE(text.find("dup_2 = 2"), std::string::npos);
}

TEST(Printer, RoundTripPreservesStructure) {
  const char* source = R"(
    int a, b;
    lock L;
    event e;
    a = 1;
    cobegin {
      thread T0 {
        int t;
        t = a * 2;
        lock(L);
        a = a + t;
        unlock(L);
        set(e);
      }
      thread T1 {
        wait(e);
        if (a > 3) { b = f(a, 1); } else { b = 0; }
        while (b < 10) { b = b + 1; }
      }
    }
    print(a);
    print(b);
  )";
  Program p1 = parser::parseOrDie(source);
  const std::string text1 = printProgram(p1);
  Program p2 = parser::parseOrDie(text1);
  const std::string text2 = printProgram(p2);
  EXPECT_EQ(text1, text2);
  EXPECT_EQ(p1.size(), p2.size());
}

TEST(Printer, BriefForms) {
  ProgramBuilder b;
  const SymbolId x = b.var("x");
  const SymbolId L = b.lock("L");
  Stmt* s1 = b.assign(x, b.lit(7));
  Stmt* s2 = b.lockStmt(L);
  Stmt* s3 = b.print(b.ref(x));
  Program p = b.take();
  EXPECT_EQ(printStmtBrief(*s1, p.symbols), "x = 7");
  EXPECT_EQ(printStmtBrief(*s2, p.symbols), "lock(L)");
  EXPECT_EQ(printStmtBrief(*s3, p.symbols), "print(x)");
}

}  // namespace
}  // namespace cssame::ir
