// Unit tests for lock-independent expression hoisting and the
// critical-section report.
#include <gtest/gtest.h>

#include "src/driver/pipeline.h"
#include "src/interp/interp.h"
#include "src/ir/printer.h"
#include "src/ir/verify.h"
#include "src/opt/licm_expr.h"
#include "src/opt/lockstats.h"
#include "src/opt/optimize.h"
#include "src/parser/parser.h"

namespace cssame::opt {
namespace {

std::string hoist(const char* src, ExprHoistStats* statsOut = nullptr) {
  ir::Program prog = parser::parseOrDie(src);
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  ExprHoistStats stats = hoistLockIndependentExpressions(c);
  if (statsOut != nullptr) *statsOut = stats;
  EXPECT_TRUE(ir::verify(prog).empty());
  return ir::printProgram(prog);
}

TEST(ExprHoist, PrivateProductMovesOut) {
  ExprHoistStats stats;
  const std::string text = hoist(R"(
    int s; lock L;
    cobegin {
      thread {
        int p, q; p = f(0); q = f(1);
        lock(L); s = s + p * q; unlock(L);
      }
      thread { lock(L); s = s + 1; unlock(L); }
    }
    print(s);
  )", &stats);
  EXPECT_EQ(stats.exprsHoisted, 1u);
  EXPECT_GE(stats.opsHoisted, 1u);
  // The temp definition lands just before the lock; the locked statement
  // now adds a single temporary.
  EXPECT_NE(text.find("li0 = p * q;"), std::string::npos) << text;
  EXPECT_NE(text.find("s = s + li0;"), std::string::npos) << text;
  const std::size_t tempPos = text.find("li0 = p * q;");
  const std::size_t lockPos = text.find("lock(L);", text.find("thread"));
  EXPECT_LT(tempPos, lockPos) << text;
}

TEST(ExprHoist, ConflictingSubtreesStay) {
  ExprHoistStats stats;
  const std::string text = hoist(R"(
    int s, t; lock L;
    cobegin {
      thread { lock(L); s = t * 2 + 1; unlock(L); }
      thread { lock(L); t = 5; s = 0; unlock(L); }
    }
    print(s);
  )", &stats);
  // t is concurrently written: t * 2 must not be hoisted.
  EXPECT_EQ(stats.exprsHoisted, 0u);
  EXPECT_NE(text.find("s = t * 2 + 1;"), std::string::npos) << text;
}

TEST(ExprHoist, MaximalSubtreeChosen) {
  ExprHoistStats stats;
  const std::string text = hoist(R"(
    int s; lock L;
    cobegin {
      thread {
        int p; p = f(0);
        lock(L); s = s + (p * p + 2 * p + 1); unlock(L);
      }
      thread { lock(L); s = s - 1; unlock(L); }
    }
    print(s);
  )", &stats);
  // One temp for the whole polynomial, not one per operator.
  EXPECT_EQ(stats.exprsHoisted, 1u);
  EXPECT_GE(stats.opsHoisted, 4u);
  EXPECT_NE(text.find("s = s + li0;"), std::string::npos) << text;
}

TEST(ExprHoist, InteriorRedefinitionBlocks) {
  ExprHoistStats stats;
  const std::string text = hoist(R"(
    int s; lock L;
    cobegin {
      thread {
        int p; p = 1;
        lock(L);
        p = p + 1;
        s = s + p * 2;
        unlock(L);
      }
      thread { lock(L); s = s + 1; unlock(L); }
    }
    print(s);
  )", &stats);
  // p is redefined inside the body before the use in s = s + p * 2:
  // p * 2 at the pre-mutex node would read the stale p, so it must stay.
  // (The earlier p + 1 is a legal hoist — nothing redefined p before it.)
  EXPECT_NE(text.find("s = s + p * 2;"), std::string::npos) << text;
  EXPECT_EQ(stats.exprsHoisted, 1u);
  EXPECT_NE(text.find("li0 = p + 1;"), std::string::npos) << text;
}

TEST(ExprHoist, SameStatementDefDoesNotBlockItsOwnRhs) {
  ExprHoistStats stats;
  hoist(R"(
    int s; lock L;
    cobegin {
      thread {
        int p; p = f(0);
        lock(L); s = s + p * 3; p = 0; unlock(L); print(p);
      }
      thread { lock(L); s = s + 1; unlock(L); }
    }
    print(s);
  )", &stats);
  // p * 3 precedes the redefinition p = 0: hoistable.
  EXPECT_EQ(stats.exprsHoisted, 1u);
}

TEST(ExprHoist, LoopConditionInputsMustBeLoopInvariant) {
  ExprHoistStats stats;
  hoist(R"(
    int s; lock L;
    cobegin {
      thread {
        int p; p = 3;
        lock(L);
        while (p * 2 > 0) { s = s + 1; p = p - 1; }
        unlock(L);
      }
      thread { lock(L); s = s + 1; unlock(L); }
    }
    print(s);
  )", &stats);
  // p changes inside the loop: p * 2 re-evaluates differently each
  // iteration and must not be hoisted.
  EXPECT_EQ(stats.exprsHoisted, 0u);
}

TEST(ExprHoist, CallOperandsNeverHoist) {
  ExprHoistStats stats;
  hoist(R"(
    int s; lock L;
    cobegin {
      thread { int p; p = 1; lock(L); s = s + f(p * 2); unlock(L); }
      thread { lock(L); s = s + 1; unlock(L); }
    }
    print(s);
  )", &stats);
  // f(p*2) contains a call at the root... p * 2 inside the call's
  // argument IS hoistable (pure subexpression).
  EXPECT_EQ(stats.exprsHoisted, 1u);
}

TEST(ExprHoist, SemanticsPreserved) {
  ir::Program prog = parser::parseOrDie(R"(
    int s; lock L;
    cobegin {
      thread { int p; p = f(7); lock(L); s = s + p * p - 2; unlock(L); }
      thread { int q; q = f(9); lock(L); s = s + q * 3; unlock(L); }
    }
    print(s);
  )");
  std::vector<long long> before = interp::run(prog, {.seed = 5}).output;
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  ExprHoistStats stats = hoistLockIndependentExpressions(c);
  EXPECT_GE(stats.exprsHoisted, 2u);
  // Determinate program (commutative adds under one lock).
  for (const interp::RunResult& r : interp::runManySeeds(prog, 10)) {
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.output, before);
  }
}

TEST(ExprHoist, ShrinksLockHoldTime) {
  ir::Program prog = parser::parseOrDie(R"(
    int s; lock L;
    cobegin {
      thread { int p; p = f(0); lock(L); s = s + (p*p*p + p*p + p); unlock(L); }
      thread { lock(L); s = s + 1; unlock(L); }
    }
    print(s);
  )");
  // Hold time is counted in statements here, so measure statically: the
  // locked statement shrinks from a 6-op expression to one addition.
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  ExprHoistStats stats = hoistLockIndependentExpressions(c);
  EXPECT_EQ(stats.exprsHoisted, 1u);
  EXPECT_GE(stats.opsHoisted, 5u);
}

TEST(LockStats, ReportsIndependentFraction) {
  ir::Program prog = parser::parseOrDie(R"(
    int s; lock L;
    cobegin {
      thread {
        int p; p = 1;
        lock(L);
        s = s + 1;
        p = p * 2;
        p = p + 3;
        unlock(L);
      }
      thread { lock(L); s = s + 2; unlock(L); }
    }
    print(s);
    print(0);
  )");
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  CriticalSectionReport report = analyzeCriticalSections(c);
  ASSERT_EQ(report.bodies.size(), 2u);
  EXPECT_EQ(report.totalInterior, 4u);     // 3 in T0 + 1 in T1
  EXPECT_EQ(report.totalIndependent, 2u);  // the two p updates
  EXPECT_DOUBLE_EQ(report.independentFraction(), 0.5);
}

TEST(LockStats, EmptyWhenNoLocks) {
  ir::Program prog = parser::parseOrDie("int a; a = 1; print(a);");
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  CriticalSectionReport report = analyzeCriticalSections(c);
  EXPECT_TRUE(report.bodies.empty());
  EXPECT_DOUBLE_EQ(report.independentFraction(), 0.0);
}

TEST(ExprHoist, FullPipelineWithExprMotion) {
  ir::Program prog = parser::parseOrDie(R"(
    int s; lock L;
    cobegin {
      thread { int p; p = f(0); lock(L); s = s + p * 4; unlock(L); }
      thread { int q; q = f(1); lock(L); s = s + q * 5; unlock(L); }
    }
    print(s);
  )");
  std::vector<long long> before = interp::run(prog, {.seed = 2}).output;
  opt::OptimizeReport report = opt::optimizeProgram(prog);
  EXPECT_GE(report.exprMotion.exprsHoisted, 2u);
  EXPECT_TRUE(ir::verify(prog).empty());
  for (const interp::RunResult& r : interp::runManySeeds(prog, 8)) {
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.output, before);
  }
}

}  // namespace
}  // namespace cssame::opt
