// Tests for CVRA (concurrent value-range analysis, src/sanalysis/vrange):
//   - interval domain unit behavior (hull, collapse-free eval, widening),
//   - end-to-end ranges on parsed programs, including the key precision
//     result: CSSAME π pruning inside a mutex body yields a strictly
//     tighter interval than plain CSSA,
//   - the DeadBranch / UnreachableCode / DivByZero / Assert* diagnostics,
//   - the CSCC lockstep cross-check and dynamic soundness property over
//     generated workloads (~200), cross-validated against exhaustive
//     schedule exploration with value recording.
#include <gtest/gtest.h>

#include "src/driver/pipeline.h"
#include "src/interp/explore.h"
#include "src/parser/parser.h"
#include "src/sanalysis/vrange.h"
#include "src/workload/generator.h"

namespace cssame::sanalysis {
namespace {

VrangeResult analyzeSource(const char* src, DiagEngine* diag = nullptr,
                           bool cssame = true) {
  ir::Program prog = parser::parseOrDie(src);
  driver::Compilation c =
      driver::analyze(prog, {.enableCssame = cssame, .warnings = false});
  return analyzeValueRanges(c, diag);
}

/// The hull for a named variable after analyzing `src`.
Interval varRange(const char* src, const char* var, bool cssame = true) {
  ir::Program prog = parser::parseOrDie(src);
  driver::Compilation c =
      driver::analyze(prog, {.enableCssame = cssame, .warnings = false});
  const VrangeResult vr = analyzeValueRanges(c);
  const SymbolId id = prog.symbols.lookup(var);
  EXPECT_TRUE(id.valid()) << var;
  return vr.varRanges[id.index()];
}

// ---------------------------------------------------------------------------
// Interval domain units.

TEST(Interval, HullBasics) {
  const Interval a = Interval::single(3);
  const Interval b = Interval::single(7);
  EXPECT_EQ(Interval::hull(a, b), Interval::bounds(3, 7));
  EXPECT_EQ(Interval::hull(Interval::topValue(), b), b);
  EXPECT_EQ(Interval::hull(a, Interval::full()), Interval::full());
  EXPECT_TRUE(Interval::hull(a, b).contains(5));
  EXPECT_FALSE(Interval::hull(a, b).contains(8));
}

TEST(Interval, Predicates) {
  EXPECT_TRUE(Interval::single(0).isZero());
  EXPECT_TRUE(Interval::single(4).isSingleton());
  EXPECT_TRUE(Interval::bounds(1, 9).excludesZero());
  EXPECT_FALSE(Interval::bounds(-1, 1).excludesZero());
  EXPECT_TRUE(Interval::full().contains(-123456789));
  EXPECT_FALSE(Interval::topValue().contains(0));
}

TEST(IntervalDomain, SingletonOperandsFoldExactly) {
  IntervalDomain d;
  const Interval r =
      d.evalBinary(ir::BinOp::Mul, Interval::single(6), Interval::single(7));
  EXPECT_EQ(r, Interval::single(42));
}

TEST(IntervalDomain, NonSingletonNeverCollapses) {
  IntervalDomain d;
  // [2,3] * 0 is exactly 0, but a collapse would break the CSCC lockstep
  // (CSCC says Bottom * Const = Bottom); the result must stay non-singleton.
  const Interval r =
      d.evalBinary(ir::BinOp::Mul, Interval::bounds(2, 3), Interval::single(0));
  EXPECT_FALSE(r.isSingleton());
  EXPECT_TRUE(r.contains(0));  // ...but must still cover the true value
  // Comparisons of wide ranges land in [0,1], never a singleton.
  const Interval c =
      d.evalBinary(ir::BinOp::Lt, Interval::bounds(0, 1), Interval::single(5));
  EXPECT_FALSE(c.isSingleton());
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.contains(1));
}

TEST(IntervalDomain, BranchResolvesOnlyOnSingletons) {
  IntervalDomain d;
  EXPECT_EQ(d.branch(Interval::single(1)), dataflow::BranchVerdict::TrueOnly);
  EXPECT_EQ(d.branch(Interval::single(0)), dataflow::BranchVerdict::FalseOnly);
  EXPECT_EQ(d.branch(Interval::bounds(1, 2)), dataflow::BranchVerdict::Both);
  EXPECT_EQ(d.branch(Interval::topValue()), dataflow::BranchVerdict::Unknown);
}

TEST(IntervalDomain, WideningLoosensOnlyMovingBounds) {
  IntervalDomain d;
  const Interval prev = Interval::bounds(0, 5);
  const Interval next = Interval::bounds(0, 9);
  // Below the threshold: keep the precise hull.
  EXPECT_EQ(d.widen(prev, next, 2), next);
  // Past the threshold: the growing side goes to ∞, the stable one stays.
  const Interval w = d.widen(prev, next, d.widenThreshold + 1);
  EXPECT_TRUE(w.hiInf);
  EXPECT_FALSE(w.loInf);
  EXPECT_EQ(w.lo, 0);
}

// ---------------------------------------------------------------------------
// End-to-end ranges.

TEST(Vrange, StraightLineSingletons) {
  const Interval y = varRange("int x, y; x = 2; y = x * 3 + 1; print(y);",
                              "y");
  // Hull of the entry value 0 and the assigned 7.
  EXPECT_EQ(y, Interval::bounds(0, 7));
}

TEST(Vrange, RacyMergeStaysBounded) {
  const Interval y = varRange(
      "int x, y; lock L;"
      "cobegin {"
      "  thread T0 { lock(L); x = 1; unlock(L); }"
      "  thread T1 { lock(L); x = 5; unlock(L); }"
      "}"
      "y = x + 10; print(y);",
      "y");
  EXPECT_FALSE(y.isTop());
  EXPECT_FALSE(y.loInf);
  EXPECT_FALSE(y.hiInf);
  // x after the coend is 0, 1 or 5; y covers {0} ∪ [10,15].
  EXPECT_TRUE(y.contains(0));
  EXPECT_TRUE(y.contains(11));
  EXPECT_TRUE(y.contains(15));
  EXPECT_FALSE(y.contains(16));
}

TEST(Vrange, LoopCountersWidenSoundly) {
  const Interval i = varRange(
      "int i; i = 0; while (i < 100) { i = i + 1; } print(i);", "i");
  EXPECT_FALSE(i.isTop());
  EXPECT_TRUE(i.contains(0));
  EXPECT_TRUE(i.contains(100));  // widening must not clip the exit value
  EXPECT_FALSE(i.contains(-1));  // the stable lower bound survives
}

// The acceptance-critical precision result: inside T0's mutex body the
// read of x can only see T0's own write — CSSAME prunes T1's concurrent
// definition from the π merge (both writes are protected by L), while
// plain CSSA keeps it. The interval for y is strictly tighter under
// CSSAME.
TEST(Vrange, CssamePiPruningTightensIntervalOverCssa) {
  const char* src =
      "int x, y; lock L;"
      "cobegin {"
      "  thread T0 { lock(L); x = 1; y = x + 1; unlock(L); }"
      "  thread T1 { lock(L); x = 5; unlock(L); }"
      "}"
      "print(y);";
  const Interval tight = varRange(src, "y", /*cssame=*/true);
  const Interval wide = varRange(src, "y", /*cssame=*/false);

  // Under CSSAME: x reads exactly 1, so y ∈ hull(0, 2) = [0,2].
  EXPECT_EQ(tight, Interval::bounds(0, 2));
  // Under CSSA the π merge keeps x = 5, so y reaches 6.
  EXPECT_TRUE(wide.contains(6));
  // Strict containment: tight ⊂ wide.
  EXPECT_TRUE(wide.contains(tight.lo));
  EXPECT_TRUE(wide.contains(tight.hi));
  EXPECT_FALSE(tight.contains(wide.hi));
}

// ---------------------------------------------------------------------------
// Diagnostics.

TEST(VrangeDiag, DeadBranchAndUnreachable) {
  DiagEngine diag;
  const VrangeResult vr = analyzeSource(
      "int a, b; a = 1;"
      "if (a > 0) { b = 10; } else { b = 20; }"
      "print(b);",
      &diag);
  EXPECT_GE(diag.countOf(DiagCode::DeadBranch), 1u);
  EXPECT_GE(diag.countOf(DiagCode::UnreachableCode), 1u);
  EXPECT_GE(vr.stats.deadBranches, 1u);
  EXPECT_GE(vr.stats.unreachableNodes, 1u);
}

TEST(VrangeDiag, DivByDefiniteZero) {
  DiagEngine diag;
  (void)analyzeSource("int a, b; b = 7 / a; print(b);", &diag);
  EXPECT_GE(diag.countOf(DiagCode::DivByZero), 1u);  // entry value of a is 0
}

TEST(VrangeDiag, AssertProvedAndMayFail) {
  DiagEngine diag;
  const VrangeResult vr = analyzeSource(
      "int x; x = 3;"
      "assert(x > 0);"   // proved: [3,3] > 0
      "assert(x > 5);",  // always fails
      &diag);
  EXPECT_EQ(vr.stats.assertsProved, 1u);
  EXPECT_EQ(vr.stats.assertsMayFail, 1u);
  EXPECT_GE(diag.countOf(DiagCode::AssertProved), 1u);
  EXPECT_GE(diag.countOf(DiagCode::AssertMayFail), 1u);
}

TEST(VrangeDiag, RacyAssertMayFail) {
  DiagEngine diag;
  (void)analyzeSource(
      "int x; lock L;"
      "cobegin {"
      "  thread T0 { lock(L); x = 0; unlock(L); }"
      "  thread T1 { lock(L); x = 1; unlock(L); }"
      "}"
      "assert(x);",
      &diag);
  // x ∈ [0,1] contains zero: the assert may fail on some schedule.
  EXPECT_GE(diag.countOf(DiagCode::AssertMayFail), 1u);
}

// ---------------------------------------------------------------------------
// CSCC lockstep + dynamic soundness over generated workloads.

class VrangeProperty : public ::testing::TestWithParam<std::uint64_t> {};

void checkWorkload(ir::Program prog) {
  driver::Compilation comp = driver::analyze(prog, {.warnings = false});
  VrangeOptions opts;
  opts.diagnose = false;
  const VrangeResult vr = analyzeValueRanges(comp, nullptr, opts);

  // 1. The interval lattice must agree with the CSCC constant lattice.
  EXPECT_EQ(crossCheckConstants(comp, vr), "");

  // 2. Every value any variable holds in any state of any schedule must
  //    lie inside the static hull. Observations remain valid witnesses
  //    even when an exploration budget trips.
  interp::ExploreOptions eopts;
  eopts.recordValues = true;
  eopts.maxSteps = 1u << 16;
  eopts.maxStates = 1u << 14;
  const interp::ExploreResult dyn = interp::exploreAllSchedules(prog, eopts);
  for (const auto& [var, range] : dyn.observedRanges) {
    const Interval& hull = vr.varRanges[var.index()];
    EXPECT_TRUE(hull.contains(range.first) && hull.contains(range.second))
        << "'" << prog.symbols.nameOf(var) << "' observed ["
        << range.first << "," << range.second << "] outside " << hull.str();
  }
}

TEST_P(VrangeProperty, SoundOnRacyWorkloads) {
  const std::uint64_t seed = GetParam();
  workload::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.threads = 2 + static_cast<int>(seed % 2);
  cfg.sharedVars = 3;
  cfg.locks = 2;
  cfg.stmtsPerThread = 3 + static_cast<int>(seed % 3);
  cfg.maxDepth = 1;
  cfg.loopProb = 0.0;  // keep the schedule space exhaustible
  cfg.lockedFraction = 0.25 * static_cast<double>(seed % 4);
  cfg.determinate = false;
  checkWorkload(workload::generateRandom(cfg));
}

TEST_P(VrangeProperty, SoundOnLockStructuredWorkloads) {
  const std::uint64_t seed = GetParam();
  checkWorkload(workload::makeLockStructured(
      2, 1, 2 + static_cast<int>(seed % 2),
      0.25 * static_cast<double>(seed % 5), seed));
}

// 100 seeds × 2 families = 200 workloads.
INSTANTIATE_TEST_SUITE_P(Sweep, VrangeProperty,
                         ::testing::Range<std::uint64_t>(1, 101));

}  // namespace
}  // namespace cssame::sanalysis
