// Exactness of the explorer's dynamic partial-order reduction.
//
// ExploreOptions::dpor promises that `outputs`, `racedVars` and the
// deadlock / lock-error / assert / pointer-error verdicts of a reduced
// sweep are bit-identical to the unreduced one whenever the unreduced
// sweep completes (every Mazurkiewicz trace keeps a representative),
// that `observedRanges` only ever shrinks to a sub-range, and that the
// reduced result — counters included — stays identical for any worker
// count. This test sweeps the same workload families as
// explore_parallel_test (random racy programs, lock-structured, the
// adversarial gallery, TSO, budget-exhausted configurations) with the
// unreduced explorer as the oracle, plus a TSO litmus gallery and a
// reduction-factor floor on the independence-rich benchmark workload.
#include <gtest/gtest.h>

#include <string>

#include "src/interp/explore.h"
#include "src/parser/parser.h"
#include "src/support/budget.h"
#include "src/workload/generator.h"
#include "src/workload/paper_programs.h"

namespace cssame::interp {
namespace {

/// Field-by-field equality of two reduced runs (worker sweeps): every
/// observable, counters included, must match exactly.
void expectIdentical(const ExploreResult& a, const ExploreResult& b,
                     const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.budgetExceeded, b.budgetExceeded);
  EXPECT_EQ(a.anyDeadlock, b.anyDeadlock);
  EXPECT_EQ(a.anyLockError, b.anyLockError);
  EXPECT_EQ(a.statesExplored, b.statesExplored);
  EXPECT_EQ(a.racedVars, b.racedVars);
  EXPECT_EQ(a.observedRanges, b.observedRanges);
  EXPECT_EQ(a.anyAssertFailure, b.anyAssertFailure);
  EXPECT_EQ(a.anyPtrError, b.anyPtrError);
  EXPECT_EQ(a.dpor.prunedSuccessors, b.dpor.prunedSuccessors);
  EXPECT_EQ(a.dpor.sleepSetHits, b.dpor.sleepSetHits);
  EXPECT_EQ(a.dpor.depQueries, b.dpor.depQueries);
  EXPECT_EQ(a.dpor.partialReexpansions, b.dpor.partialReexpansions);
}

/// The exactness contract against the unreduced oracle. Budgets make the
/// comparison asymmetric: the reduced sweep does strictly less work, so
/// a complete unreduced run forces a complete reduced run with equal
/// verdicts — while an exhausted unreduced run promises nothing except
/// that the reduction itself stays deterministic.
void expectContract(const ExploreResult& full, const ExploreResult& reduced,
                    const char* what) {
  SCOPED_TRACE(what);
  if (!full.complete) return;
  EXPECT_TRUE(reduced.complete);
  EXPECT_EQ(full.outputs, reduced.outputs);
  EXPECT_EQ(full.racedVars, reduced.racedVars);
  EXPECT_EQ(full.anyDeadlock, reduced.anyDeadlock);
  EXPECT_EQ(full.anyLockError, reduced.anyLockError);
  EXPECT_EQ(full.anyAssertFailure, reduced.anyAssertFailure);
  EXPECT_EQ(full.anyPtrError, reduced.anyPtrError);
  EXPECT_LE(reduced.statesExplored, full.statesExplored);
  // observedRanges may shrink, but only to sub-ranges of the unreduced
  // observations, over the same variable set (every variable is sampled
  // at the initial state).
  ASSERT_EQ(full.observedRanges.size(), reduced.observedRanges.size());
  for (const auto& [v, mm] : reduced.observedRanges) {
    auto it = full.observedRanges.find(v);
    ASSERT_NE(it, full.observedRanges.end());
    EXPECT_LE(it->second.first, mm.first);
    EXPECT_GE(it->second.second, mm.second);
  }
}

/// Runs the unreduced oracle, then the reduced sweep at workers 1/2/8;
/// checks worker determinism of the reduction and the contract.
void checkDpor(const ir::Program& prog, ExploreOptions opts,
               const std::string& label) {
  SCOPED_TRACE(label);
  opts.dpor = false;
  opts.workers = 1;
  const ExploreResult full = exploreAllSchedules(prog, opts);
  EXPECT_EQ(full.dpor.depQueries, 0u);  // off means off
  opts.dpor = true;
  const ExploreResult one = exploreAllSchedules(prog, opts);
  opts.workers = 2;
  const ExploreResult two = exploreAllSchedules(prog, opts);
  opts.workers = 8;
  const ExploreResult eight = exploreAllSchedules(prog, opts);
  expectIdentical(one, two, "dpor workers=2 vs workers=1");
  expectIdentical(one, eight, "dpor workers=8 vs workers=1");
  expectContract(full, one, "dpor vs unreduced oracle");
}

ExploreOptions smallBudget() {
  ExploreOptions opts;
  opts.maxSteps = 1u << 14;
  opts.maxStates = 1u << 12;
  opts.detectRaces = true;
  opts.recordValues = true;
  return opts;
}

TEST(ExploreDpor, RandomWorkloadSweep) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    workload::GeneratorConfig cfg;
    cfg.seed = seed;
    cfg.threads = 2 + static_cast<int>(seed % 2);
    cfg.sharedVars = 3;
    cfg.locks = 2;
    cfg.stmtsPerThread = 3 + static_cast<int>(seed % 2);
    cfg.maxDepth = 1;
    cfg.loopProb = 0.0;
    cfg.lockedFraction = 0.25 * static_cast<double>(seed % 4);
    cfg.determinate = false;
    checkDpor(workload::generateRandom(cfg), smallBudget(),
              "generateRandom seed=" + std::to_string(seed));
  }
}

TEST(ExploreDpor, LockStructuredSweep) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const double lockedFraction = 0.25 * static_cast<double>(seed % 5);
    checkDpor(workload::makeLockStructured(2, 1, 2 + static_cast<int>(seed % 2),
                                           lockedFraction, seed),
              smallBudget(), "makeLockStructured seed=" + std::to_string(seed));
  }
}

TEST(ExploreDpor, AdversarialPrograms) {
  checkDpor(parser::parseOrDie(R"(
    lock A, B;
    cobegin {
      thread { lock(A); lock(B); unlock(B); unlock(A); }
      thread { lock(B); lock(A); unlock(A); unlock(B); }
    }
  )"),
            smallBudget(), "lock-order deadlock");
  checkDpor(parser::parseOrDie(R"(
    lock L; int a;
    cobegin {
      thread { unlock(L); a = 1; }
      thread { a = 2; }
    }
  )"),
            smallBudget(), "unlock without holding");
  checkDpor(parser::parseOrDie(R"(
    int a;
    cobegin {
      thread { a = a + 1; }
      thread { a = a + 1; }
    }
    assert(a == 2);
  )"),
            smallBudget(), "assert over racy sum");
  checkDpor(parser::parseOrDie(R"(
    int a; event e;
    cobegin {
      thread { a = 1; set(e); }
      thread { wait(e); print(a); }
    }
  )"),
            smallBudget(), "set/wait ordering");
  checkDpor(parser::parseOrDie(R"(
    int a; int b;
    cobegin {
      thread { a = 1; barrier; b = a; }
      thread { b = 2; barrier; print(b); }
    }
  )"),
            smallBudget(), "barrier rendezvous");
  checkDpor(parser::parseOrDie(R"(
    int a[4]; int p; int i;
    cobegin {
      thread { a[0] = 1; a[1] = 2; p = &a[2]; *p = 3; }
      thread { i = a[0]; i = *&a[1]; a[3] = a[3] + 1; }
    }
    print(a[3]);
  )"),
            smallBudget(), "pointer and array accesses");
  checkDpor(parser::parseOrDie(R"(
    int p; int x;
    cobegin {
      thread { p = 999; x = *p; }
      thread { x = 1; }
    }
  )"),
            smallBudget(), "pointer error schedule");
  checkDpor(parser::parseOrDie(R"(
    int a; int i;
    cobegin {
      thread { i = 0; while (i < 3) { a = a + 1; i = i + 1; } }
      thread { while (a < 2) { } print(a); }
    }
  )"),
            smallBudget(), "spin loop on a shared condition");
  checkDpor(parser::parseOrDie(workload::figure2Source()), smallBudget(),
            "paper figure 2");
}

TEST(ExploreDpor, BudgetExhaustedRuns) {
  // The reduced sweep does strictly less work per state, so budgets trip
  // at different points; what must survive is worker determinism, the
  // off-switch oracle, and completion dominance (checked in checkDpor).
  workload::GeneratorConfig cfg;
  cfg.threads = 3;
  cfg.sharedVars = 3;
  cfg.locks = 1;
  cfg.stmtsPerThread = 5;
  cfg.maxDepth = 1;
  cfg.loopProb = 0.0;
  cfg.determinate = false;
  for (std::uint64_t seed = 100; seed < 103; ++seed) {
    cfg.seed = seed;
    const ir::Program prog = workload::generateRandom(cfg);

    ExploreOptions steps = smallBudget();
    steps.maxSteps = 64;
    checkDpor(prog, steps, "maxSteps=64 seed=" + std::to_string(seed));

    ExploreOptions states = smallBudget();
    states.maxStates = 16;
    checkDpor(prog, states, "maxStates=16 seed=" + std::to_string(seed));

    ExploreOptions depth = smallBudget();
    depth.maxDepthPerRun = 3;
    checkDpor(prog, depth, "maxDepthPerRun=3 seed=" + std::to_string(seed));

    ExploreOptions memory = smallBudget();
    memory.maxMemoryBytes = 16u << 10;
    checkDpor(prog, memory, "maxMemoryBytes=16K seed=" + std::to_string(seed));
  }
}

TEST(ExploreDpor, TsoRandomSweep) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    workload::GeneratorConfig cfg;
    cfg.seed = seed;
    cfg.threads = 2;
    cfg.sharedVars = 3;
    cfg.locks = 1;
    cfg.stmtsPerThread = 3;
    cfg.maxDepth = 1;
    cfg.loopProb = 0.0;
    cfg.lockedFraction = 0.25 * static_cast<double>(seed % 3);
    cfg.determinate = false;
    cfg.fenceProb = seed % 2 == 0 ? 0.2 : 0.0;
    cfg.atomicFraction = seed % 3 == 0 ? 0.5 : 0.0;
    ExploreOptions opts = smallBudget();
    opts.model = support::MemoryModel::TSO;
    checkDpor(workload::generateRandom(cfg), opts,
              "tso generateRandom seed=" + std::to_string(seed));
  }
}

TEST(ExploreDpor, TsoLitmusGallery) {
  // The classic weak-memory litmus shapes: store buffering (with and
  // without the repairing fence / atomics), message passing, load
  // buffering shape, and independent reads of independent writes. Each
  // must keep its exact output set — the SB `0 0` outcome exists under
  // TSO precisely because flush actions interleave, and the reduction
  // must not prune the flush orderings that produce it.
  const char* gallery[] = {
      R"(int x, y, r0, r1;
         cobegin {
           thread { x = 1; r0 = y; }
           thread { y = 1; r1 = x; }
         }
         print(r0); print(r1);)",
      R"(int x, y, r0, r1;
         cobegin {
           thread { x = 1; fence; r0 = y; }
           thread { y = 1; fence; r1 = x; }
         }
         print(r0); print(r1);)",
      R"(int x, y, r0, r1;
         cobegin {
           thread { atomic_store(x, 1); r0 = atomic_load(y); }
           thread { atomic_store(y, 1); r1 = atomic_load(x); }
         }
         print(r0); print(r1);)",
      R"(int d, f, r0, r1;
         cobegin {
           thread { d = 41; f = 1; }
           thread { r0 = f; r1 = d; }
         }
         print(r0); print(r1);)",
      R"(int x, y, a, b;
         cobegin {
           thread { a = x; y = 1; }
           thread { b = y; x = 1; }
         }
         print(a); print(b);)",
      R"(int x, y, r0, r1, r2, r3;
         cobegin {
           thread { x = 1; }
           thread { y = 1; }
           thread { r0 = x; r1 = y; }
           thread { r2 = y; r3 = x; }
         }
         print(r0 * 8 + r1 * 4 + r2 * 2 + r3);)",
  };
  for (const char* src : gallery) {
    for (support::MemoryModel model :
         {support::MemoryModel::SC, support::MemoryModel::TSO}) {
      ExploreOptions opts = smallBudget();
      opts.maxSteps = 1u << 18;
      opts.maxStates = 1u << 16;
      opts.model = model;
      checkDpor(parser::parseOrDie(src), opts,
                std::string("litmus model=") +
                    (model == support::MemoryModel::TSO ? "TSO" : "SC"));
    }
  }
}

TEST(ExploreDpor, ReductionFloorOnScaleWorkload) {
  // The bench_scale_explore reduction workload: four threads doing
  // mostly thread-local update chains, with one racing pair on `r`.
  // This is where the persistent sets earn their keep — the acceptance
  // floor is a 10x cut in explored states, under both memory models,
  // with every contract field intact (checked by checkDpor too).
  const char* src = R"(
    int w0, w1, w2, w3, r;
    cobegin {
      thread { w0 = w0 + 1; w0 = w0 * 2; w0 = w0 + 3; r = r + w0; }
      thread { w1 = w1 + 2; w1 = w1 * 3; w1 = w1 + 1; r = r * 2; }
      thread { w2 = w2 + 1; w2 = w2 * 2; w2 = w2 + 1; }
      thread { w3 = w3 + 5; w3 = w3 * 2; w3 = w3 + 1; }
    }
    print(r);
  )";
  const ir::Program prog = parser::parseOrDie(src);
  for (support::MemoryModel model :
       {support::MemoryModel::SC, support::MemoryModel::TSO}) {
    SCOPED_TRACE(model == support::MemoryModel::TSO ? "TSO" : "SC");
    ExploreOptions opts;
    opts.maxSteps = 1u << 24;
    opts.maxStates = 1u << 22;
    opts.detectRaces = true;
    opts.recordValues = true;
    opts.model = model;
    checkDpor(prog, opts, "scale workload");
    opts.dpor = false;
    const ExploreResult full = exploreAllSchedules(prog, opts);
    opts.dpor = true;
    const ExploreResult reduced = exploreAllSchedules(prog, opts);
    ASSERT_TRUE(full.complete);
    ASSERT_TRUE(reduced.complete);
    EXPECT_GE(full.statesExplored, 10 * reduced.statesExplored);
    EXPECT_GT(reduced.dpor.prunedSuccessors, 0u);
    EXPECT_GT(reduced.dpor.depQueries, 0u);
  }
}

}  // namespace
}  // namespace cssame::interp
