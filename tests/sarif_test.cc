// Tests for the SARIF 2.1.0 / JSON diagnostic emitters: structural
// requirements of the schema, rule-catalog consistency, witness notes as
// relatedLocations, and string escaping.
#include <gtest/gtest.h>

#include "src/driver/pipeline.h"
#include "src/parser/parser.h"
#include "src/sanalysis/csan.h"
#include "src/sanalysis/sarif.h"
#include "src/workload/paper_programs.h"

namespace cssame::sanalysis {
namespace {

std::vector<Diagnostic> figure1Diags() {
  ir::Program p = parser::parseOrDie(workload::figure1Source());
  driver::Compilation c = driver::analyze(p, {.warnings = false});
  DiagEngine diag;
  (void)runCsan(c, diag);
  return diag.diagnostics();
}

std::size_t countOccurrences(const std::string& hay, const std::string& s) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(s); pos != std::string::npos;
       pos = hay.find(s, pos + s.size()))
    ++n;
  return n;
}

TEST(Sarif, RequiredTopLevelStructure) {
  const std::string log = toSarif(figure1Diags(), "figure1.cp");
  EXPECT_NE(log.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(log.find("sarif-schema-2.1.0.json"), std::string::npos);
  EXPECT_NE(log.find("\"runs\":[{"), std::string::npos);
  EXPECT_NE(log.find("\"name\":\"csan\""), std::string::npos);
  EXPECT_NE(log.find("\"results\":["), std::string::npos);
}

TEST(Sarif, RuleCatalogMatchesResults) {
  const std::vector<Diagnostic> diags = figure1Diags();
  ASSERT_FALSE(diags.empty());
  const std::string log = toSarif(diags, "figure1.cp");
  // Every emitted code appears both as a rule id and as a result ruleId.
  for (const Diagnostic& d : diags) {
    const std::string id = std::string("\"id\":\"") + diagCodeName(d.code);
    const std::string ruleId =
        std::string("\"ruleId\":\"") + diagCodeName(d.code);
    EXPECT_NE(log.find(id), std::string::npos) << diagCodeName(d.code);
    EXPECT_NE(log.find(ruleId), std::string::npos) << diagCodeName(d.code);
  }
  // One result object per diagnostic.
  EXPECT_EQ(countOccurrences(log, "\"ruleId\":"), diags.size());
  // Rules carry descriptions for the viewer's rule pane.
  EXPECT_NE(log.find("\"shortDescription\""), std::string::npos);
}

TEST(Sarif, WitnessNotesBecomeRelatedLocations) {
  const std::vector<Diagnostic> diags = figure1Diags();
  std::size_t notes = 0;
  for (const Diagnostic& d : diags) notes += d.notes.size();
  ASSERT_GT(notes, 0u);
  const std::string log = toSarif(diags, "figure1.cp");
  EXPECT_GT(countOccurrences(log, "\"relatedLocations\":["), 0u);
  // Each note becomes one physicalLocation+message pair; every location
  // (primary and related) names the artifact.
  EXPECT_EQ(countOccurrences(log, "\"physicalLocation\":"),
            diags.size() + notes);
  EXPECT_EQ(countOccurrences(log, "\"uri\":\"figure1.cp\""),
            diags.size() + notes);
}

TEST(Sarif, InvalidLocationsOmitRegion) {
  std::vector<Diagnostic> diags(1);
  diags[0].code = DiagCode::PotentialDataRace;
  diags[0].message = "race";
  diags[0].loc = SourceLoc{};  // line 0: built programmatically
  const std::string log = toSarif(diags, "gen.cp");
  EXPECT_EQ(log.find("\"region\""), std::string::npos);
  EXPECT_NE(log.find("\"uri\":\"gen.cp\""), std::string::npos);
}

TEST(Sarif, ColumnZeroClampsToOne) {
  std::vector<Diagnostic> diags(1);
  diags[0].code = DiagCode::LockLeak;
  diags[0].message = "leak";
  diags[0].loc = SourceLoc{7, 0};  // whole-line diagnostic
  const std::string log = toSarif(diags, "x.cp");
  EXPECT_NE(log.find("\"startLine\":7"), std::string::npos);
  EXPECT_NE(log.find("\"startColumn\":1"), std::string::npos);
}

TEST(Sarif, SeverityMapsToLevel) {
  std::vector<Diagnostic> diags(2);
  diags[0].severity = DiagSeverity::Warning;
  diags[0].code = DiagCode::PotentialDataRace;
  diags[0].message = "w";
  diags[1].severity = DiagSeverity::Error;
  diags[1].code = DiagCode::SyntaxError;
  diags[1].message = "e";
  const std::string log = toSarif(diags, "x.cp");
  EXPECT_NE(log.find("\"level\":\"warning\""), std::string::npos);
  EXPECT_NE(log.find("\"level\":\"error\""), std::string::npos);
}

TEST(Sarif, JsonEscaping) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(jsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(jsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Sarif, MessagesAreEscaped) {
  std::vector<Diagnostic> diags(1);
  diags[0].code = DiagCode::PotentialDataRace;
  diags[0].message = "race on \"a\"\nsecond line";
  const std::string log = toSarif(diags, "x.cp");
  EXPECT_NE(log.find("race on \\\"a\\\"\\nsecond line"), std::string::npos);
  EXPECT_EQ(log.find('\n'), std::string::npos);  // single-line output
}

TEST(Json, CompactFormStructure) {
  const std::vector<Diagnostic> diags = figure1Diags();
  const std::string out = toJson(diags, "figure1.cp");
  EXPECT_NE(out.find("\"file\":\"figure1.cp\""), std::string::npos);
  EXPECT_EQ(countOccurrences(out, "\"code\":"), diags.size());
  EXPECT_NE(out.find("\"notes\":["), std::string::npos);
  EXPECT_NE(out.find("\"line\":"), std::string::npos);
}

}  // namespace
}  // namespace cssame::sanalysis
