// Robustness: the front end must reject garbage gracefully (diagnostics,
// never crashes) and the pipeline must hold its invariants on mutated
// inputs. Also pins down cross-form consistency: for every use, the
// CSSAME reaching-definition set is a subset of the CSSA set.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "src/cssa/reaching.h"
#include "src/driver/pipeline.h"
#include "src/ir/printer.h"
#include "src/ir/verify.h"
#include "src/opt/optimize.h"
#include "src/parser/parser.h"
#include "src/pfg/verify.h"
#include "src/workload/generator.h"

namespace cssame {
namespace {

TEST(Robustness, GarbageInputsProduceDiagnosticsNotCrashes) {
  const char* garbage[] = {
      "",
      ";;;;",
      "int",
      "int ;",
      "} } {",
      "cobegin cobegin cobegin",
      "thread { }",
      "lock(L",
      "int a; a = ((((1;",
      "while () {}",
      "if (1) else {}",
      "doall = 0, 3 {}",
      "doall i 0 3 {}",
      "int a; a = 1 + + ;",
      "print();",
      "int a; a = f(;",
      "event e; set(); wait();",
      "int x; x = 9999999999999999999999999;",
      "lock lock; lock(lock);",
      "int int;",
      "cobegin { thread",
      "\x01\x02\x03 a b c",
  };
  for (const char* src : garbage) {
    DiagEngine diag;
    ir::Program p = parser::parseProgram(src, diag);
    // Whatever came back must at least be structurally verifiable or the
    // parse must have reported errors.
    if (!diag.hasErrors()) {
      EXPECT_TRUE(ir::verify(p).empty()) << "src: " << src;
    }
  }
}

TEST(Robustness, RandomTokenSoupNeverCrashes) {
  const char* tokens[] = {"int",  "lock", "event", "if",     "else",
                          "while", "cobegin", "thread", "unlock", "set",
                          "wait",  "print", "barrier", "doall", "a",
                          "b",     "L",    "(",     ")",      "{",
                          "}",     ";",    ",",     "=",      "+",
                          "-",     "*",    "/",     "%",      "<",
                          ">",     "==",   "!=",    "&&",     "||",
                          "!",     "0",    "1",     "42"};
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::string src;
    const int len = 1 + static_cast<int>(rng() % 60);
    for (int i = 0; i < len; ++i) {
      src += tokens[rng() % (sizeof(tokens) / sizeof(tokens[0]))];
      src += ' ';
    }
    DiagEngine diag;
    ir::Program p = parser::parseProgram(src, diag);
    if (!diag.hasErrors()) {
      // If it happened to parse, the whole pipeline must run cleanly.
      driver::Compilation c = driver::analyze(p, {.warnings = true});
      EXPECT_TRUE(c.ssa().verify(c.graph()).empty()) << src;
    }
  }
}

TEST(Robustness, PipelineOnEveryGeneratorShape) {
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    workload::GeneratorConfig cfg;
    cfg.seed = seed;
    cfg.determinate = seed % 2 == 0;
    cfg.useEvents = seed % 3 == 0;
    cfg.maxDepth = 1 + static_cast<int>(seed % 4);
    ir::Program p = workload::generateRandom(cfg);
    driver::Compilation c = driver::analyze(p, {.warnings = true});
    EXPECT_TRUE(c.ssa().verify(c.graph()).empty()) << "seed " << seed;
    const auto graphProblems = pfg::verifyGraph(c.graph());
    EXPECT_TRUE(graphProblems.empty())
        << "seed " << seed << ": " << graphProblems.front();
  }
}

TEST(Consistency, CssameReachingSetsAreSubsets) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ir::Program p1 = workload::makeLockStructured(3, 3, 4, 0.8, seed);
    ir::Program p2 = workload::makeLockStructured(3, 3, 4, 0.8, seed);
    driver::Compilation cssa =
        driver::analyze(p1, {.enableCssame = false, .warnings = false});
    driver::Compilation cssame = driver::analyze(p2, {.warnings = false});
    cssa::ReachingInfo rPlain =
        cssa::computeParallelReachingDefs(cssa.graph(), cssa.ssa());
    cssa::ReachingInfo rCssame =
        cssa::computeParallelReachingDefs(cssame.graph(), cssame.ssa());

    // The two programs are structurally identical clones; match uses by
    // statement id + position. Simplest robust mapping: compare total
    // reaching-def counts per statement id.
    auto countsPerStmt = [](const ir::Program& prog,
                            const cssa::ReachingInfo& info,
                            const driver::Compilation& comp) {
      std::map<StmtId, std::size_t> counts;
      (void)comp;
      ir::forEachStmt(prog.body, [&](const ir::Stmt& s) {
        if (!s.expr) return;
        ir::forEachExpr(*s.expr, [&](const ir::Expr& e) {
          if (e.kind == ir::ExprKind::VarRef)
            counts[s.id] += info.defs(&e).size();
        });
      });
      return counts;
    };
    auto plainCounts = countsPerStmt(p1, rPlain, cssa);
    auto cssameCounts = countsPerStmt(p2, rCssame, cssame);
    for (const auto& [stmt, n] : cssameCounts) {
      auto it = plainCounts.find(stmt);
      ASSERT_NE(it, plainCounts.end());
      EXPECT_LE(n, it->second) << "seed " << seed;
    }
  }
}

TEST(Robustness, OptimizerOnGarbageFreePrograms) {
  // Stress the full optimizer across generator shapes with loops and
  // branches; only invariants, no output checks (racy programs).
  for (std::uint64_t seed = 300; seed < 310; ++seed) {
    workload::GeneratorConfig cfg;
    cfg.seed = seed;
    cfg.determinate = false;
    cfg.branchProb = 0.4;
    cfg.loopProb = 0.3;
    ir::Program p = workload::generateRandom(cfg);
    opt::OptimizeReport report = opt::optimizeProgram(p);
    EXPECT_TRUE(ir::verify(p).empty()) << "seed " << seed;
    EXPECT_LE(report.iterations, 8);
    driver::Compilation c = driver::analyze(p, {.warnings = false});
    EXPECT_TRUE(c.ssa().verify(c.graph()).empty());
  }
}

}  // namespace
}  // namespace cssame
