// Robustness: the front end must reject garbage gracefully (diagnostics,
// never crashes) and the pipeline must hold its invariants on mutated
// inputs. Also pins down cross-form consistency: for every use, the
// CSSAME reaching-definition set is a subset of the CSSA set.
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <random>

#include "src/cssa/reaching.h"
#include "src/driver/pipeline.h"
#include "src/interp/explore.h"
#include "src/interp/interp.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"
#include "src/ir/verify.h"
#include "src/opt/optimize.h"
#include "src/parser/parser.h"
#include "src/pfg/verify.h"
#include "src/workload/generator.h"

namespace cssame {
namespace {

TEST(Robustness, GarbageInputsProduceDiagnosticsNotCrashes) {
  const char* garbage[] = {
      "",
      ";;;;",
      "int",
      "int ;",
      "} } {",
      "cobegin cobegin cobegin",
      "thread { }",
      "lock(L",
      "int a; a = ((((1;",
      "while () {}",
      "if (1) else {}",
      "doall = 0, 3 {}",
      "doall i 0 3 {}",
      "int a; a = 1 + + ;",
      "print();",
      "int a; a = f(;",
      "event e; set(); wait();",
      "int x; x = 9999999999999999999999999;",
      "lock lock; lock(lock);",
      "int int;",
      "cobegin { thread",
      "\x01\x02\x03 a b c",
  };
  for (const char* src : garbage) {
    DiagEngine diag;
    ir::Program p = parser::parseProgram(src, diag);
    // Whatever came back must at least be structurally verifiable or the
    // parse must have reported errors.
    if (!diag.hasErrors()) {
      EXPECT_TRUE(ir::verify(p).empty()) << "src: " << src;
    }
  }
}

TEST(Robustness, RandomTokenSoupNeverCrashes) {
  const char* tokens[] = {"int",  "lock", "event", "if",     "else",
                          "while", "cobegin", "thread", "unlock", "set",
                          "wait",  "print", "barrier", "doall", "a",
                          "b",     "L",    "(",     ")",      "{",
                          "}",     ";",    ",",     "=",      "+",
                          "-",     "*",    "/",     "%",      "<",
                          ">",     "==",   "!=",    "&&",     "||",
                          "!",     "0",    "1",     "42"};
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::string src;
    const int len = 1 + static_cast<int>(rng() % 60);
    for (int i = 0; i < len; ++i) {
      src += tokens[rng() % (sizeof(tokens) / sizeof(tokens[0]))];
      src += ' ';
    }
    DiagEngine diag;
    ir::Program p = parser::parseProgram(src, diag);
    if (!diag.hasErrors()) {
      // If it happened to parse, the whole pipeline must run cleanly.
      driver::Compilation c = driver::analyze(p, {.warnings = true});
      EXPECT_TRUE(c.ssa().verify(c.graph()).empty()) << src;
    }
  }
}

TEST(Robustness, PipelineOnEveryGeneratorShape) {
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    workload::GeneratorConfig cfg;
    cfg.seed = seed;
    cfg.determinate = seed % 2 == 0;
    cfg.useEvents = seed % 3 == 0;
    cfg.maxDepth = 1 + static_cast<int>(seed % 4);
    if (seed % 4 == 1) {  // pointer/array shapes through the full pipeline
      cfg.ptrProb = 0.25;
      cfg.arrayProb = 0.2;
    }
    ir::Program p = workload::generateRandom(cfg);
    driver::Compilation c = driver::analyze(p, {.warnings = true});
    EXPECT_TRUE(c.ssa().verify(c.graph()).empty()) << "seed " << seed;
    const auto graphProblems = pfg::verifyGraph(c.graph());
    EXPECT_TRUE(graphProblems.empty())
        << "seed " << seed << ": " << graphProblems.front();
  }
}

TEST(Consistency, CssameReachingSetsAreSubsets) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ir::Program p1 = workload::makeLockStructured(3, 3, 4, 0.8, seed);
    ir::Program p2 = workload::makeLockStructured(3, 3, 4, 0.8, seed);
    driver::Compilation cssa =
        driver::analyze(p1, {.enableCssame = false, .warnings = false});
    driver::Compilation cssame = driver::analyze(p2, {.warnings = false});
    cssa::ReachingInfo rPlain =
        cssa::computeParallelReachingDefs(cssa.graph(), cssa.ssa());
    cssa::ReachingInfo rCssame =
        cssa::computeParallelReachingDefs(cssame.graph(), cssame.ssa());

    // The two programs are structurally identical clones; match uses by
    // statement id + position. Simplest robust mapping: compare total
    // reaching-def counts per statement id.
    auto countsPerStmt = [](const ir::Program& prog,
                            const cssa::ReachingInfo& info,
                            const driver::Compilation& comp) {
      std::map<StmtId, std::size_t> counts;
      (void)comp;
      ir::forEachStmt(prog.body, [&](const ir::Stmt& s) {
        if (!s.expr) return;
        ir::forEachExpr(*s.expr, [&](const ir::Expr& e) {
          if (e.kind == ir::ExprKind::VarRef)
            counts[s.id] += info.defs(&e).size();
        });
      });
      return counts;
    };
    auto plainCounts = countsPerStmt(p1, rPlain, cssa);
    auto cssameCounts = countsPerStmt(p2, rCssame, cssame);
    for (const auto& [stmt, n] : cssameCounts) {
      auto it = plainCounts.find(stmt);
      ASSERT_NE(it, plainCounts.end());
      EXPECT_LE(n, it->second) << "seed " << seed;
    }
  }
}

TEST(Robustness, OptimizerOnGarbageFreePrograms) {
  // Stress the full optimizer across generator shapes with loops and
  // branches; only invariants, no output checks (racy programs).
  for (std::uint64_t seed = 300; seed < 310; ++seed) {
    workload::GeneratorConfig cfg;
    cfg.seed = seed;
    cfg.determinate = false;
    cfg.branchProb = 0.4;
    cfg.loopProb = 0.3;
    if (seed % 2 == 1) {  // optimizer guards on indirect accesses
      cfg.ptrProb = 0.2;
      cfg.arrayProb = 0.2;
    }
    ir::Program p = workload::generateRandom(cfg);
    opt::OptimizeReport report = opt::optimizeProgram(p);
    EXPECT_TRUE(ir::verify(p).empty()) << "seed " << seed;
    EXPECT_LE(report.iterations, 8);
    driver::Compilation c = driver::analyze(p, {.warnings = false});
    EXPECT_TRUE(c.ssa().verify(c.graph()).empty());
  }
}

TEST(Robustness, ParseCheckedNeverAborts) {
  parser::ParseResult bad = parser::parseChecked("int a; a = ((1;");
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(bad.status().ok());
  EXPECT_EQ(bad.status().fault().kind, FaultKind::ParseError);
  EXPECT_EQ(bad.status().fault().pass, "parse");

  parser::ParseResult good = parser::parseChecked("int a; a = 1;");
  EXPECT_TRUE(good.ok());
  EXPECT_TRUE(good.status().ok());
  EXPECT_EQ(good.program.size(), 1u);
}

TEST(Robustness, TryAnalyzeRejectsMalformedIrWithStructuredFault) {
  ir::ProgramBuilder b;
  const SymbolId L = b.lock("L");
  b.assign(L, b.lit(1));  // assignment to a lock symbol: ill-formed
  ir::Program p = b.take();

  DiagEngine diag;
  Expected<driver::Compilation> result =
      driver::tryAnalyze(p, {}, &diag);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.fault().kind, FaultKind::VerifyError);
  EXPECT_EQ(result.fault().pass, "ir-verify");
  EXPECT_TRUE(diag.hasErrors());
  EXPECT_EQ(diag.countOf(DiagCode::VerifyFailed), 1u);
}

TEST(Robustness, TryAnalyzeSucceedsOnWellFormedPrograms) {
  ir::Program p = workload::makeLockStructured(3, 2, 4, 0.8, 11);
  Expected<driver::Compilation> result =
      driver::tryAnalyze(p, {.verifyEachPass = true});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->verifyAll().empty());
}

// ---------------------------------------------------------------------------
// Resource budgets: exhaustion must surface as a graceful BudgetExceeded
// outcome, never a hang or an OOM kill.

/// N racy threads of `stmts` shared increments — exponential interleavings.
ir::Program makeRacy(int threads, int stmts) {
  ir::ProgramBuilder b;
  const SymbolId v = b.var("v");
  std::vector<ir::ProgramBuilder::BodyFn> bodies;
  for (int t = 0; t < threads; ++t)
    bodies.push_back([&b, v, stmts] {
      for (int s = 0; s < stmts; ++s) b.assign(v, b.add(b.ref(v), b.lit(1)));
    });
  b.cobegin(bodies);
  b.print(b.ref(v));
  return b.take();
}

TEST(Budgets, ExplorerStepBudgetExhaustsGracefully) {
  ir::Program p = makeRacy(4, 4);
  interp::ExploreResult r =
      interp::exploreAllSchedules(p, {.maxSteps = 64});
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.budgetExceeded, support::BudgetKind::Steps);
}

TEST(Budgets, ExplorerStateBudgetExhaustsGracefully) {
  ir::Program p = makeRacy(4, 4);
  interp::ExploreResult r =
      interp::exploreAllSchedules(p, {.maxStates = 16});
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.budgetExceeded, support::BudgetKind::States);
  EXPECT_LE(r.statesExplored, 17u);
}

TEST(Budgets, ExplorerMemoryBudgetExhaustsGracefully) {
  ir::Program p = makeRacy(4, 4);
  interp::ExploreResult r =
      interp::exploreAllSchedules(p, {.maxMemoryBytes = 1024});
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.budgetExceeded, support::BudgetKind::Memory);
}

TEST(Budgets, ExplorerDepthBoundStillCoversOtherSchedules) {
  ir::Program p = makeRacy(2, 2);
  interp::ExploreResult r =
      interp::exploreAllSchedules(p, {.maxDepthPerRun = 3});
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.budgetExceeded, support::BudgetKind::Depth);
  // Depth only bounds single schedules; the search itself kept going.
  EXPECT_GT(r.statesExplored, 1u);
}

TEST(Budgets, ExplorerWithinBudgetReportsComplete) {
  ir::Program p = makeRacy(2, 2);
  interp::ExploreResult r = interp::exploreAllSchedules(p);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.budgetExceeded, support::BudgetKind::None);
}

TEST(Budgets, InterpreterFuelExhaustsGracefullyOnSpinLoop) {
  ir::Program p = parser::parseOrDie("int a; while (1 > 0) { a = a + 1; }");
  interp::RunResult r = interp::run(p, {.seed = 3, .maxSteps = 10000});
  EXPECT_FALSE(r.completed);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_EQ(r.budgetExceeded, support::BudgetKind::Steps);
  EXPECT_EQ(r.steps, 10000u);
}

TEST(Budgets, InterpreterCompletionLeavesBudgetClean) {
  ir::Program p = parser::parseOrDie("int a; a = 2; print(a);");
  interp::RunResult r = interp::run(p);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.budgetExceeded, support::BudgetKind::None);
}

// ---------------------------------------------------------------------------
// verifyEachPass fuzzing: the hardened optimizer must hold every invariant
// after every pass across generator shapes.

TEST(Robustness, FuzzOptimizePipelineWithVerifyEachPass) {
  for (std::uint64_t seed = 500; seed < 540; ++seed) {
    workload::GeneratorConfig cfg;
    cfg.seed = seed;
    cfg.threads = 2 + static_cast<int>(seed % 3);
    cfg.stmtsPerThread = 8;
    cfg.determinate = seed % 2 == 0;
    cfg.useEvents = seed % 5 == 0;
    cfg.branchProb = 0.3;
    cfg.loopProb = 0.2;
    cfg.maxDepth = 1 + static_cast<int>(seed % 3);
    ir::Program p = workload::generateRandom(cfg);

    opt::OptimizeResult result = opt::optimizeProgramChecked(
        p, {.maxIterations = 3, .verifyEachPass = true});
    EXPECT_TRUE(result.ok()) << "seed " << seed << ": "
                             << result.status.str();
    EXPECT_FALSE(result.diag.hasErrors()) << "seed " << seed;
    EXPECT_TRUE(ir::verify(p).empty()) << "seed " << seed;
  }
}

TEST(Robustness, SanitizedGeneratorConfigNeverCrashes) {
  // Hostile configurations: zero/negative counts, NaN probabilities.
  workload::GeneratorConfig hostile;
  hostile.threads = -4;
  hostile.sharedVars = 0;
  hostile.locks = -1;
  hostile.stmtsPerThread = -100;
  hostile.maxDepth = 999;
  hostile.branchProb = std::numeric_limits<double>::quiet_NaN();
  hostile.loopProb = 7.0;
  hostile.lockedFraction = -3.0;
  ir::Program p = workload::generateRandom(hostile);
  EXPECT_TRUE(ir::verify(p).empty());
  Expected<driver::Compilation> c = driver::tryAnalyze(p);
  EXPECT_TRUE(c.ok());
}

}  // namespace
}  // namespace cssame
