// Unit tests for the CSSAME π rewriting (Algorithm A.3) and its two
// predicates (Theorems 1 and 2), exercised on crafted mutex bodies.
#include <gtest/gtest.h>

#include "src/cssa/rewrite.h"
#include "src/driver/pipeline.h"
#include "src/parser/parser.h"

namespace cssame::cssa {
namespace {

struct Fixture {
  ir::Program prog;
  driver::Compilation comp;

  explicit Fixture(const char* src, bool cssame = true)
      : prog(parser::parseOrDie(src)),
        comp(driver::analyze(prog,
                             {.enableCssame = cssame, .warnings = false})) {}

  std::size_t pisOn(const std::string& var) {
    std::size_t n = 0;
    for (SsaNameId id : comp.ssa().livePis())
      if (prog.symbols.nameOf(comp.ssa().def(id).var) == var) ++n;
    return n;
  }
};

TEST(Theorem2, KilledUseLosesArg) {
  // The use of a in `b = a` follows a kill (a = 1) inside the body: not
  // upward-exposed, so T1's def cannot reach it.
  Fixture f(R"(
    int a, b; lock L;
    cobegin {
      thread { lock(L); a = 1; b = a; unlock(L); }
      thread { lock(L); a = 2; unlock(L); }
    }
  )");
  EXPECT_EQ(f.pisOn("a"), 0u);
  EXPECT_GE(f.comp.rewriteStats().pisRemoved, 1u);
}

TEST(Theorem2, UpwardExposedUseKeepsArg) {
  Fixture f(R"(
    int a, b; lock L;
    cobegin {
      thread { lock(L); b = a; a = 1; unlock(L); }
      thread { lock(L); a = 2; unlock(L); }
    }
  )");
  EXPECT_EQ(f.pisOn("a"), 1u);
}

TEST(Theorem2, KillOnOnePathOnlyStaysExposed) {
  // The kill is conditional: a path from the lock reaches the use
  // without passing a definition, so the use remains upward-exposed.
  Fixture f(R"(
    int a, b, c; lock L;
    cobegin {
      thread { lock(L); if (c > 0) { a = 1; } b = a; unlock(L); }
      thread { lock(L); a = 2; unlock(L); }
    }
  )");
  EXPECT_EQ(f.pisOn("a"), 1u);
}

TEST(Theorem2, KillOnBothPathsRemovesArg) {
  Fixture f(R"(
    int a, b, c; lock L;
    cobegin {
      thread { lock(L); if (c > 0) { a = 1; } else { a = 3; } b = a; unlock(L); }
      thread { lock(L); a = 2; unlock(L); }
    }
  )");
  EXPECT_EQ(f.pisOn("a"), 0u);
}

TEST(Theorem1, DefKilledBeforeExitRemoved) {
  // T1's a = 2 never reaches its unlock (killed by a = 3), so it cannot
  // reach T0's upward-exposed use.
  Fixture f(R"(
    int a, b, x; lock L;
    cobegin {
      thread { lock(L); b = a; unlock(L); }
      thread { lock(L); a = 2; x = a; a = 3; x = a; unlock(L); }
    }
  )");
  // T0's use keeps only the arg for a = 3.
  ASSERT_EQ(f.pisOn("a"), 1u);
  for (SsaNameId id : f.comp.ssa().livePis()) {
    const ssa::Definition& d = f.comp.ssa().def(id);
    if (f.prog.symbols.nameOf(d.var) != "a") continue;
    ASSERT_EQ(d.piConflictArgs.size(), 1u);
    EXPECT_EQ(d.piConflictArgs[0].defStmt->expr->intValue, 3);
  }
}

TEST(Theorem1, DefReachingExitKept) {
  Fixture f(R"(
    int a, b; lock L;
    cobegin {
      thread { lock(L); b = a; unlock(L); }
      thread { lock(L); a = 2; unlock(L); }
    }
  )");
  ASSERT_EQ(f.pisOn("a"), 1u);
}

TEST(Rewrite, DifferentLocksDoNotInteract) {
  // The bodies belong to different mutex structures: no reduction.
  Fixture f(R"(
    int a, b; lock L, M;
    cobegin {
      thread { lock(L); a = 1; b = a; unlock(L); }
      thread { lock(M); a = 2; unlock(M); }
    }
  )");
  EXPECT_EQ(f.pisOn("a"), 1u);
}

TEST(Rewrite, UnlockedDefKeepsArg) {
  // T1's definition is outside any body: Theorems 1/2 do not apply.
  Fixture f(R"(
    int a, b; lock L;
    cobegin {
      thread { lock(L); a = 1; b = a; unlock(L); }
      thread { a = 2; }
    }
  )");
  EXPECT_EQ(f.pisOn("a"), 1u);
}

TEST(Rewrite, IllFormedBodyNotUsed) {
  // T0's body is ill-formed (nested same-lock lock): it must not be used
  // to remove dependencies, so the π stays despite the kill.
  Fixture f(R"(
    int a, b; lock L;
    cobegin {
      thread { lock(L); lock(L); a = 1; b = a; unlock(L); unlock(L); }
      thread { a = 2; }
    }
  )");
  EXPECT_GE(f.pisOn("a"), 1u);
}

TEST(Rewrite, CobeginInsideBodySameBodyArgsKept) {
  // Both access sites live in the SAME mutex body (the lock wraps a
  // nested cobegin): A.3's "another mutex body" condition fails and the
  // π argument survives — the accesses genuinely race inside the lock.
  Fixture f(R"(
    int a, b; lock L;
    lock(L);
    cobegin {
      thread { a = 1; }
      thread { b = a; }
    }
    unlock(L);
  )");
  EXPECT_EQ(f.pisOn("a"), 1u);
}

TEST(Rewrite, LoopInsideBodyHandled) {
  // The kill inside the loop body does not kill the loop-entry path:
  // upward exposure must walk the loop correctly.
  Fixture f(R"(
    int a, b, n; lock L;
    cobegin {
      thread { lock(L); while (n > 0) { b = a; a = 1; n = n - 1; } unlock(L); }
      thread { lock(L); a = 2; unlock(L); }
    }
  )");
  // First iteration's use of a is upward-exposed (no def before it on
  // the path lock → while → body): the π must survive.
  EXPECT_EQ(f.pisOn("a"), 1u);
}

TEST(Rewrite, OnlyRemovesNeverAdds) {
  const char* src = R"(
    int a, b, c; lock L;
    cobegin {
      thread { lock(L); a = 1; b = a + c; unlock(L); }
      thread { lock(L); a = 2; c = 3; unlock(L); }
    }
  )";
  Fixture cssa(src, false);
  Fixture cssame(src, true);
  EXPECT_LE(cssame.comp.ssa().countLivePis(), cssa.comp.ssa().countLivePis());
  EXPECT_LE(cssame.comp.ssa().countPiConflictArgs(),
            cssa.comp.ssa().countPiConflictArgs());
  // a's π folds (kill), c's survives (upward-exposed use, def reaches
  // T1's exit).
  EXPECT_EQ(cssame.pisOn("a"), 0u);
  EXPECT_EQ(cssame.pisOn("c"), 1u);
}

TEST(Predicates, DirectUpwardExposure) {
  Fixture f(R"(
    int a, b; lock L;
    lock(L);
    b = a;
    a = 1;
    b = a;
    unlock(L);
  )");
  const mutex::MutexBody& body = f.comp.mutexes().bodies()[0];
  ASSERT_TRUE(body.wellFormed);
  const SymbolId a = f.prog.symbols.lookup("a");

  // Collect the two uses of a in order.
  std::vector<std::pair<const ir::Expr*, const ir::Stmt*>> uses;
  ir::forEachStmt(f.prog.body, [&](const ir::Stmt& s) {
    if (s.kind != ir::StmtKind::Assign || !s.expr) return;
    ir::forEachExpr(*s.expr, [&](const ir::Expr& e) {
      if (e.kind == ir::ExprKind::VarRef && e.var == a)
        uses.emplace_back(&e, &s);
    });
  });
  ASSERT_EQ(uses.size(), 2u);
  const NodeId n0 = f.comp.graph().nodeOf(uses[0].second);
  const NodeId n1 = f.comp.graph().nodeOf(uses[1].second);
  EXPECT_TRUE(isUpwardExposedFromBody(f.comp.graph(), body, a, uses[0].first,
                                      uses[0].second, n0));
  EXPECT_FALSE(isUpwardExposedFromBody(f.comp.graph(), body, a,
                                       uses[1].first, uses[1].second, n1));
}

TEST(Predicates, DirectDefReachesExit) {
  Fixture f(R"(
    int a; lock L;
    lock(L);
    a = 1;
    a = 2;
    unlock(L);
  )");
  const mutex::MutexBody& body = f.comp.mutexes().bodies()[0];
  const SymbolId a = f.prog.symbols.lookup("a");
  std::vector<const ir::Stmt*> defs;
  ir::forEachStmt(f.prog.body, [&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::Assign && s.lhs == a) defs.push_back(&s);
  });
  ASSERT_EQ(defs.size(), 2u);
  const NodeId n = f.comp.graph().nodeOf(defs[0]);
  EXPECT_FALSE(defReachesBodyExit(f.comp.graph(), body, a, defs[0], n));
  EXPECT_TRUE(defReachesBodyExit(f.comp.graph(), body, a, defs[1], n));
}

}  // namespace
}  // namespace cssame::cssa
