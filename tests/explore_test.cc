// Tests for the exhaustive schedule explorer, and explorer-backed
// verification of every optimization pass: an optimizer may shrink the
// set of possible outputs of a racy program, never grow it.
#include <gtest/gtest.h>

#include "src/interp/explore.h"
#include "src/interp/interp.h"
#include "src/opt/optimize.h"
#include "src/parser/parser.h"

namespace cssame::interp {
namespace {

ExploreResult explore(const char* src) {
  ir::Program prog = parser::parseOrDie(src);
  ExploreResult r = exploreAllSchedules(prog);
  EXPECT_TRUE(r.complete) << "state budget exhausted";
  return r;
}

TEST(Explore, DynamicRaceDetected) {
  // Two co-enabled writes to `a` with no lock held: the detector marks
  // `a` raced; `b` is only touched by one thread.
  ir::Program prog = parser::parseOrDie(R"(
    int a, b;
    cobegin {
      thread { a = 1; b = 2; }
      thread { a = 3; }
    }
    print(a); print(b);
  )");
  ExploreResult r = exploreAllSchedules(prog, {.detectRaces = true});
  ASSERT_TRUE(r.complete);
  EXPECT_TRUE(r.anyRace());
  EXPECT_EQ(r.racedVars.size(), 1u);
}

TEST(Explore, LockedAccessesAreNotDynamicRaces) {
  ir::Program prog = parser::parseOrDie(R"(
    int a; lock L;
    cobegin {
      thread { lock(L); a = a + 1; unlock(L); }
      thread { lock(L); a = a + 2; unlock(L); }
    }
    print(a);
  )");
  ExploreResult r = exploreAllSchedules(prog, {.detectRaces = true});
  ASSERT_TRUE(r.complete);
  EXPECT_FALSE(r.anyRace());
}

TEST(Explore, RaceDetectionOffByDefault) {
  ir::Program prog = parser::parseOrDie(R"(
    int a;
    cobegin { thread { a = 1; } thread { a = 2; } }
    print(a);
  )");
  ExploreResult r = exploreAllSchedules(prog);
  ASSERT_TRUE(r.complete);
  EXPECT_FALSE(r.anyRace());
}

TEST(Explore, SequentialProgramHasOneOutput) {
  ExploreResult r = explore("int a; a = 2; a = a * 3; print(a);");
  EXPECT_EQ(r.outputList(),
            (std::vector<std::vector<long long>>{{6}}));
  EXPECT_FALSE(r.anyDeadlock);
}

TEST(Explore, RacyStoresYieldBothOutcomes) {
  ExploreResult r = explore(R"(
    int a;
    cobegin {
      thread { a = 1; }
      thread { a = 2; }
    }
    print(a);
  )");
  EXPECT_EQ(r.outputList(),
            (std::vector<std::vector<long long>>{{1}, {2}}));
}

TEST(Explore, LostUpdateEnumerated) {
  ExploreResult r = explore(R"(
    int a;
    cobegin {
      thread { int t; t = a; a = t + 1; }
      thread { int u; u = a; a = u + 1; }
    }
    print(a);
  )");
  // Both the serialized (2) and the lost-update (1) results exist.
  EXPECT_EQ(r.outputList(),
            (std::vector<std::vector<long long>>{{1}, {2}}));
}

TEST(Explore, LocksSerializeToOneOutcome) {
  ExploreResult r = explore(R"(
    int a; lock L;
    cobegin {
      thread { lock(L); int t; t = a; a = t + 1; unlock(L); }
      thread { lock(L); int u; u = a; a = u + 1; unlock(L); }
    }
    print(a);
  )");
  EXPECT_EQ(r.outputList(),
            (std::vector<std::vector<long long>>{{2}}));
}

TEST(Explore, OutputInterleavingsEnumerated) {
  ExploreResult r = explore(R"(
    cobegin {
      thread { print(1); }
      thread { print(2); }
    }
  )");
  EXPECT_EQ(r.outputList(),
            (std::vector<std::vector<long long>>{{1, 2}, {2, 1}}));
}

TEST(Explore, DeadlockDetectedAlongSomeSchedule) {
  ExploreResult r = explore(R"(
    int a; lock L, M;
    cobegin {
      thread { lock(L); lock(M); unlock(M); unlock(L); }
      thread { lock(M); lock(L); unlock(L); unlock(M); }
    }
    print(a);
  )");
  EXPECT_TRUE(r.anyDeadlock);
  // The non-deadlocking schedules still print 0.
  EXPECT_TRUE(r.outputs.contains(std::vector<long long>{0}));
}

TEST(Explore, Figure2OutputsExactly) {
  ir::Program prog = parser::parseOrDie(R"(
    int a, b, x, y; lock L;
    a = 0; b = 0;
    cobegin {
      thread { lock(L); a = 5; b = a + 3; if (b > 4) { a = a + b; } x = a; unlock(L); }
      thread { lock(L); a = b + 6; y = a; unlock(L); }
    }
    print(x);
    print(y);
  )");
  ExploreResult r = exploreAllSchedules(prog);
  ASSERT_TRUE(r.complete);
  // The paper's semantics: x is always 13; y is 6 (T1 first) or 14.
  EXPECT_EQ(r.outputList(),
            (std::vector<std::vector<long long>>{{13, 6}, {13, 14}}));
}

TEST(Explore, BarrierRestrictsOutcomes) {
  ExploreResult without = explore(R"(
    int a;
    cobegin {
      thread { a = 1; }
      thread { print(a); }
    }
  )");
  EXPECT_EQ(without.outputList(),
            (std::vector<std::vector<long long>>{{0}, {1}}));

  ExploreResult with = explore(R"(
    int a;
    cobegin {
      thread { a = 1; barrier; }
      thread { barrier; print(a); }
    }
  )");
  EXPECT_EQ(with.outputList(),
            (std::vector<std::vector<long long>>{{1}}));
}

// --- Explorer-backed optimization verification ------------------------------

/// Asserts outputs(optimized) ⊆ outputs(original).
void expectRefinement(const char* src) {
  ir::Program original = parser::parseOrDie(src);
  ExploreResult before = exploreAllSchedules(original);
  ASSERT_TRUE(before.complete) << src;

  ir::Program optimized = parser::parseOrDie(src);
  opt::optimizeProgram(optimized);
  ExploreResult after = exploreAllSchedules(optimized);
  ASSERT_TRUE(after.complete) << src;

  EXPECT_FALSE(after.outputs.empty());
  for (const auto& out : after.outputs) {
    EXPECT_TRUE(before.outputs.contains(out))
        << "optimization introduced a new behavior";
  }
}

TEST(ExploreVerify, Figure2FullPipeline) {
  expectRefinement(R"(
    int a, b, x, y; lock L;
    a = 0; b = 0;
    cobegin {
      thread { lock(L); a = 5; b = a + 3; if (b > 4) { a = a + b; } x = a; unlock(L); }
      thread { lock(L); a = b + 6; y = a; unlock(L); }
    }
    print(x);
    print(y);
  )");
}

TEST(ExploreVerify, RacyProgram) {
  expectRefinement(R"(
    int a, b;
    cobegin {
      thread { a = 1; b = a + 1; }
      thread { a = 2; }
    }
    print(a);
    print(b);
  )");
}

TEST(ExploreVerify, LicmOnPaperFigure5a) {
  expectRefinement(R"(
    int a, b, x, y; lock L;
    b = 0;
    cobegin {
      thread { lock(L); b = 8; x = 13; unlock(L); }
      thread { lock(L); a = b + 6; y = a; unlock(L); }
    }
    print(x);
    print(y);
  )");
}

TEST(ExploreVerify, EventOrderedProgram) {
  expectRefinement(R"(
    int data, out; event ready;
    cobegin {
      thread { data = 42; set(ready); }
      thread { wait(ready); out = data; }
    }
    print(out);
  )");
}

TEST(ExploreVerify, BarrierPhases) {
  expectRefinement(R"(
    int a, b, ra, rb;
    cobegin {
      thread { a = 1; barrier; rb = b; }
      thread { b = 2; barrier; ra = a; }
    }
    print(ra + rb);
  )");
}

TEST(ExploreVerify, ExpressionHoisting) {
  expectRefinement(R"(
    int s; lock L;
    cobegin {
      thread { int p; p = f(3); lock(L); s = s + p * p; unlock(L); }
      thread { lock(L); s = s + 1; unlock(L); }
    }
    print(s);
  )");
}

}  // namespace
}  // namespace cssame::interp
