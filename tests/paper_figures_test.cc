// End-to-end checks of the paper's running example (Figures 1-3).
//
// Figure 2's program is analyzed and the resulting CSSA/CSSAME forms are
// compared against the forms printed in Figure 3: five π terms under plain
// CSSA, exactly one (`tb0 = π(b0, b1)`) under CSSAME, with both φ terms
// (`a3`, `a5`) surviving.
#include <gtest/gtest.h>

#include "src/cssa/form_printer.h"
#include "src/cssa/reaching.h"
#include "src/driver/pipeline.h"
#include "src/ir/verify.h"

namespace cssame {
namespace {

const char* kFigure2 = R"(
int a, b, x, y;
lock L;
a = 0;
b = 0;
cobegin {
  thread T0 {
    lock(L);
    a = 5;
    b = a + 3;
    if (b > 4) { a = a + b; }
    x = a;
    unlock(L);
  }
  thread T1 {
    lock(L);
    a = b + 6;
    y = a;
    unlock(L);
  }
}
print(x);
print(y);
)";

const char* kFigure1 = R"(
int a, b;
lock L;
a = 1;
b = 2;
cobegin {
  thread T0 {
    lock(L);
    a = a + b;
    unlock(L);
  }
  thread T1 {
    f(a);
    lock(L);
    a = 3;
    b = b + g(a);
    unlock(L);
  }
}
print(a);
print(b);
)";

TEST(Figure2, ParsesAndVerifies) {
  ir::Program prog = parser::parseOrDie(kFigure2);
  EXPECT_TRUE(ir::verify(prog).empty());
  // 2 inits + cobegin + 7 stmts in T0 + 4 in T1 + 2 prints.
  EXPECT_EQ(prog.size(), 16u);
}

TEST(Figure2, MutexStructures) {
  ir::Program prog = parser::parseOrDie(kFigure2);
  driver::Compilation c = driver::analyze(prog);
  ASSERT_EQ(c.mutexes().lockVars().size(), 1u);
  const auto& bodies = c.mutexes().bodies();
  ASSERT_EQ(bodies.size(), 2u);
  for (const auto& b : bodies) {
    EXPECT_TRUE(b.wellFormed);
    // The body contains its unlock node but not its lock node.
    EXPECT_TRUE(b.members.test(b.unlockNode.index()));
    EXPECT_FALSE(b.members.test(b.lockNode.index()));
  }
  // No synchronization warnings on a well-formed program.
  EXPECT_EQ(c.diag().diagnostics().size(), 0u);
  // Two mutex edges: lock(T0)-unlock(T1) and lock(T1)-unlock(T0).
  EXPECT_EQ(c.graph().mutexEdges.size(), 2u);
}

TEST(Figure2, CssaHasFivePiTerms) {
  ir::Program prog = parser::parseOrDie(kFigure2);
  driver::Compilation c = driver::analyze(prog, {.enableCssame = false});
  EXPECT_EQ(c.ssa().countLivePis(), 5u) << cssa::printForm(c.graph(), c.ssa());
  // T1's π on `a` merges the control def with both of T0's definitions.
  std::size_t maxArgs = 0;
  for (SsaNameId pi : c.ssa().livePis())
    maxArgs = std::max(maxArgs, c.ssa().def(pi).piConflictArgs.size());
  EXPECT_EQ(maxArgs, 2u);
}

TEST(Figure2, CssameKeepsOnlyThePiOnB) {
  ir::Program prog = parser::parseOrDie(kFigure2);
  driver::Compilation c = driver::analyze(prog);
  ASSERT_EQ(c.ssa().countLivePis(), 1u) << cssa::printForm(c.graph(), c.ssa());
  const ssa::Definition& pi = c.ssa().def(c.ssa().livePis().front());
  // The survivor is the π on `b` in T1 (Figure 3b: tb0 = π(b0, b1)).
  EXPECT_EQ(c.program().symbols.nameOf(pi.var), "b");
  ASSERT_EQ(pi.piConflictArgs.size(), 1u);
  EXPECT_EQ(c.rewriteStats().pisRemoved, 4u);
}

TEST(Figure2, PhiTermsSurviveCssame) {
  ir::Program prog = parser::parseOrDie(kFigure2);
  driver::Compilation c = driver::analyze(prog);
  // Figure 3b: a3 = φ(a1, a2) at the if-join and a5 = φ(a3, a4) at coend.
  EXPECT_EQ(c.ssa().countLivePhis(), 2u) << cssa::printForm(c.graph(), c.ssa());
  // SSA chains remain structurally consistent after rewriting.
  EXPECT_TRUE(c.ssa().verify(c.graph()).empty());
}

TEST(Figure1, LockKillsCrossThreadDefForSecondUse) {
  ir::Program prog = parser::parseOrDie(kFigure1);
  // With CSSAME, the use of `a` in `b = b + g(a)` (inside T1's mutex body,
  // after `a = 3`) is not upward-exposed, so T0's definition of `a` cannot
  // reach it: its only reaching definition is `a = 3`.
  driver::Compilation c = driver::analyze(prog);
  cssa::ReachingInfo reach =
      cssa::computeParallelReachingDefs(c.graph(), c.ssa());

  const ir::SymbolTable& syms = c.program().symbols;
  const SymbolId a = syms.lookup("a");
  // Find the VarRef of `a` inside the call to g().
  const ir::Expr* gUse = nullptr;
  ir::forEachStmt(c.program().body, [&](const ir::Stmt& s) {
    if (s.kind != ir::StmtKind::Assign || !s.expr) return;
    ir::forEachExpr(*s.expr, [&](const ir::Expr& e) {
      if (e.kind == ir::ExprKind::Call &&
          syms.nameOf(e.callee) == "g") {
        gUse = e.operands[0].get();
      }
    });
  });
  ASSERT_NE(gUse, nullptr);
  ASSERT_EQ(gUse->var, a);

  const auto& defs = reach.defs(gUse);
  ASSERT_EQ(defs.size(), 1u);
  const ssa::Definition& d = c.ssa().def(defs.front());
  ASSERT_EQ(d.kind, ssa::DefKind::Assign);
  EXPECT_EQ(d.stmt->expr->kind, ir::ExprKind::IntConst);
  EXPECT_EQ(d.stmt->expr->intValue, 3);

  // Under plain CSSA the same use sees both `a = 3` and T0's `a = a + b`.
  ir::Program prog2 = parser::parseOrDie(kFigure1);
  driver::Compilation c2 = driver::analyze(prog2, {.enableCssame = false});
  cssa::ReachingInfo reach2 =
      cssa::computeParallelReachingDefs(c2.graph(), c2.ssa());
  const ir::Expr* gUse2 = nullptr;
  ir::forEachStmt(c2.program().body, [&](const ir::Stmt& s) {
    if (s.kind != ir::StmtKind::Assign || !s.expr) return;
    ir::forEachExpr(*s.expr, [&](const ir::Expr& e) {
      if (e.kind == ir::ExprKind::Call &&
          c2.program().symbols.nameOf(e.callee) == "g")
        gUse2 = e.operands[0].get();
    });
  });
  ASSERT_NE(gUse2, nullptr);
  EXPECT_EQ(reach2.defs(gUse2).size(), 2u);
}

}  // namespace
}  // namespace cssame
