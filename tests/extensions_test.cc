// Tests for the two extensions beyond the paper's core algorithms:
//   - doall parallel loops (the paper's prototype supports them via
//     language macros, Section 6) — desugared to cobegin at parse time;
//   - barrier synchronization (listed as future work in Section 7):
//     interpreter rendezvous semantics and the MHP phase refinement.
#include <gtest/gtest.h>

#include "src/driver/pipeline.h"
#include "src/interp/interp.h"
#include "src/ir/printer.h"
#include "src/mutex/races.h"
#include "src/opt/optimize.h"
#include "src/parser/parser.h"

namespace cssame {
namespace {

// --- doall ------------------------------------------------------------------

TEST(Doall, ExecutesAllIterations) {
  ir::Program prog = parser::parseOrDie(R"(
    int s; lock L;
    doall i = 1, 5 {
      lock(L);
      s = s + i;
      unlock(L);
    }
    print(s);
  )");
  for (const interp::RunResult& r : interp::runManySeeds(prog, 10)) {
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.output, (std::vector<long long>{15}));
  }
}

TEST(Doall, IterationsAreConcurrent) {
  ir::Program prog = parser::parseOrDie(R"(
    int a;
    doall i = 0, 1 { a = i; }
    print(a);
  )");
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  // The two iterations' writes to `a` conflict.
  bool found = false;
  for (const pfg::ConflictEdge& e : c.graph().conflicts)
    found |= c.program().symbols.nameOf(e.var) == "a";
  EXPECT_TRUE(found);
}

TEST(Doall, PrivateIndexNoConflicts) {
  ir::Program prog = parser::parseOrDie(R"(
    int s; lock L;
    doall i = 0, 3 { lock(L); s = s + i; unlock(L); }
  )");
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  for (const pfg::ConflictEdge& e : c.graph().conflicts)
    EXPECT_EQ(c.program().symbols.nameOf(e.var), "s");
}

TEST(Doall, WorksWithCssameReduction) {
  // Each iteration kills s... no: iterations accumulate. Use a kill
  // pattern: each iteration writes then reads its own region under the
  // lock — CSSAME removes the cross-iteration π args.
  ir::Program prog = parser::parseOrDie(R"(
    int s, t; lock L;
    doall i = 0, 2 {
      lock(L);
      s = i;
      t = s + 1;
      unlock(L);
    }
    print(t);
  )");
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  // The use of s in t = s + 1 follows the kill s = i in the same body:
  // all cross-iteration π args on s disappear.
  for (SsaNameId id : c.ssa().livePis()) {
    EXPECT_NE(c.program().symbols.nameOf(c.ssa().def(id).var), "s")
        << "pi on s should have been rewritten away";
  }
  EXPECT_GT(c.rewriteStats().argsRemoved, 0u);
}

TEST(Doall, OptimizesAndPreservesSemantics) {
  ir::Program prog = parser::parseOrDie(R"(
    int s; lock L;
    doall i = 1, 4 {
      int sq;
      sq = i * i;
      lock(L);
      s = s + sq;
      unlock(L);
    }
    print(s);
  )");
  opt::optimizeProgram(prog);
  for (const interp::RunResult& r : interp::runManySeeds(prog, 8)) {
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.output, (std::vector<long long>{30}));
  }
}

// --- barriers ---------------------------------------------------------------

TEST(Barrier, RendezvousOrdersPhases) {
  // Phase 1: both threads write their slot; phase 2: each reads the
  // OTHER thread's slot. The barrier guarantees visibility.
  ir::Program prog = parser::parseOrDie(R"(
    int a, b, ra, rb;
    cobegin {
      thread { a = 1; barrier; rb = b; }
      thread { b = 2; barrier; ra = a; }
    }
    print(ra);
    print(rb);
  )");
  for (const interp::RunResult& r : interp::runManySeeds(prog, 20)) {
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.output, (std::vector<long long>{1, 2}));
  }
}

TEST(Barrier, AloneIsNoOp) {
  ir::Program prog = parser::parseOrDie("barrier; print(1);");
  interp::RunResult r = interp::run(prog);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.output, (std::vector<long long>{1}));
}

TEST(Barrier, SingleThreadCobeginPasses) {
  ir::Program prog = parser::parseOrDie(R"(
    cobegin { thread { barrier; print(1); } }
  )");
  interp::RunResult r = interp::run(prog);
  ASSERT_TRUE(r.completed);
}

TEST(Barrier, FinishedSiblingDoesNotBlock) {
  ir::Program prog = parser::parseOrDie(R"(
    int a;
    cobegin {
      thread { a = 1; }
      thread { barrier; print(a); }
    }
  )");
  for (const interp::RunResult& r : interp::runManySeeds(prog, 10))
    ASSERT_TRUE(r.completed) << "finished sibling must release barrier";
}

TEST(Barrier, MismatchedCountsDeadlock) {
  ir::Program prog = parser::parseOrDie(R"(
    int a; lock L;
    cobegin {
      thread { barrier; barrier; a = 1; }
      thread { barrier; lock(L); }
    }
  )");
  // Thread 2 takes L and finishes... actually thread 2 holds L forever?
  // No: it just ends. Thread 1 waits at barrier 2 while thread 2 is
  // done -> released. Use a genuinely stuck shape instead:
  ir::Program stuck = parser::parseOrDie(R"(
    int a; event e;
    cobegin {
      thread { barrier; barrier; a = 1; }
      thread { barrier; wait(e); }
    }
  )");
  interp::RunResult r = interp::run(stuck, {.seed = 3});
  EXPECT_TRUE(r.deadlocked);
  (void)prog;
}

TEST(BarrierMhp, PhaseSeparationRemovesRaces) {
  ir::Program prog = parser::parseOrDie(R"(
    int a, b;
    cobegin {
      thread { a = 1; barrier; b = a + 1; }
      thread { barrier; print(a); }
    }
  )");
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  DiagEngine diag;
  mutex::RaceReport races =
      mutex::detectRaces(c.graph(), c.mhp(), c.mutexes(), diag);
  // a=1 (phase 0, T0) vs print(a) (phase 1, T1): separated by barrier.
  // b=a+1 (phase 1, T0) vs print(a) (phase 1, T1): same phase but only
  // reads conflict-free... b is written in T0 only. So: no races at all.
  EXPECT_EQ(races.potentialRaces, 0u);
}

TEST(BarrierMhp, SamePhaseStillRaces) {
  ir::Program prog = parser::parseOrDie(R"(
    int a;
    cobegin {
      thread { barrier; a = 1; }
      thread { barrier; a = 2; }
    }
    print(a);
  )");
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  DiagEngine diag;
  mutex::RaceReport races =
      mutex::detectRaces(c.graph(), c.mhp(), c.mutexes(), diag);
  EXPECT_EQ(races.potentialRaces, 1u);
}

TEST(BarrierMhp, PiTermsAreNotRemovedByBarriers) {
  // The barrier orders the write before the read — so the VALUE still
  // flows. π placement must keep the conflict argument (the whole point
  // of the conflicting() vs mayHappenInParallel() split).
  ir::Program prog = parser::parseOrDie(R"(
    int a, b;
    cobegin {
      thread { a = 7; barrier; }
      thread { barrier; b = a; }
    }
    print(b);
  )");
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  std::size_t pisOnA = 0;
  for (SsaNameId id : c.ssa().livePis())
    pisOnA += c.program().symbols.nameOf(c.ssa().def(id).var) == "a";
  EXPECT_EQ(pisOnA, 1u);
  // And constant propagation must see BOTH 0 (entry) and 7 meet → no
  // wrong folding of b.
  opt::optimizeProgram(prog);
  for (const interp::RunResult& r : interp::runManySeeds(prog, 10)) {
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.output, (std::vector<long long>{7}));
  }
}

TEST(BarrierMhp, BarrierInLoopDisablesRefinement) {
  ir::Program prog = parser::parseOrDie(R"(
    int a, n;
    cobegin {
      thread { while (n < 2) { barrier; n = n + 1; } a = 1; }
      thread { barrier; print(a); }
    }
  )");
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  DiagEngine diag;
  mutex::RaceReport races =
      mutex::detectRaces(c.graph(), c.mhp(), c.mutexes(), diag);
  // With the refinement disabled, a=1 vs print(a) must stay a potential
  // race (conservative).
  EXPECT_GE(races.potentialRaces, 1u);
}

TEST(BarrierMhp, LicmNeverCrossesBarrier) {
  ir::Program prog = parser::parseOrDie(R"(
    int a, x; lock L;
    cobegin {
      thread { lock(L); x = 5; barrier; a = a + 1; unlock(L); }
      thread { barrier; lock(L); a = a + 2; unlock(L); }
    }
    print(x);
  )");
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  opt::LicmStats stats = opt::moveLockIndependentCode(c);
  // x = 5 may not sink (the barrier blocks the backward scan) and the
  // hoist scan stops at it from the front... x = 5 is before the
  // barrier, so hoisting IS allowed. Sinking past the barrier is not.
  const std::string text = ir::printProgram(prog);
  const std::size_t barrierPos = text.find("barrier");
  const std::size_t xPos = text.find("x = 5");
  ASSERT_NE(barrierPos, std::string::npos);
  ASSERT_NE(xPos, std::string::npos);
  EXPECT_LT(xPos, barrierPos) << text;
  (void)stats;
}

TEST(Barrier, PdceKeepsBarriers) {
  ir::Program prog = parser::parseOrDie(R"(
    int a;
    cobegin {
      thread { a = 1; barrier; }
      thread { barrier; print(a); }
    }
  )");
  opt::optimizeProgram(prog);
  const std::string text = ir::printProgram(prog);
  EXPECT_EQ(std::count(text.begin(), text.end(), ';') >= 3, true);
  EXPECT_NE(text.find("barrier;"), std::string::npos) << text;
  for (const interp::RunResult& r : interp::runManySeeds(prog, 10)) {
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.output, (std::vector<long long>{1}));
  }
}

TEST(Barrier, RoundTripsThroughPrinter) {
  ir::Program p = parser::parseOrDie(R"(
    cobegin {
      thread { barrier; }
      thread { barrier; }
    }
  )");
  const std::string text = ir::printProgram(p);
  ir::Program q = parser::parseOrDie(text);
  EXPECT_EQ(ir::printProgram(q), text);
}

}  // namespace
}  // namespace cssame
