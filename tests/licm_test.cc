// Unit tests for lock independent code motion: Definition 5 legality,
// Theorem 3 landing pads, dependency barriers, compound statements,
// event-sync barriers and empty-body removal.
#include <gtest/gtest.h>

#include "src/driver/pipeline.h"
#include "src/interp/interp.h"
#include "src/ir/printer.h"
#include "src/ir/verify.h"
#include "src/opt/licm.h"
#include "src/parser/parser.h"

namespace cssame::opt {
namespace {

std::string moveCode(const char* src, LicmStats* statsOut = nullptr) {
  ir::Program prog = parser::parseOrDie(src);
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  LicmStats stats = moveLockIndependentCode(c);
  if (statsOut != nullptr) *statsOut = stats;
  EXPECT_TRUE(ir::verify(prog).empty());
  return ir::printProgram(prog);
}

TEST(Licm, SinksIndependentTrailingStore) {
  LicmStats stats;
  const std::string text = moveCode(R"(
    int a, x; lock L;
    cobegin {
      thread { lock(L); a = a + 1; x = 13; unlock(L); }
      thread { lock(L); a = a + 2; unlock(L); }
    }
    print(x);
  )", &stats);
  EXPECT_EQ(stats.sunk, 1u);
  EXPECT_NE(text.find("unlock(L);\n    x = 13;"), std::string::npos) << text;
}

TEST(Licm, HoistsIndependentLeadingStore) {
  LicmStats stats;
  const std::string text = moveCode(R"(
    int a, x; lock L;
    cobegin {
      thread { lock(L); x = 13; a = a + x; unlock(L); }
      thread { lock(L); a = a + 2; unlock(L); }
    }
    print(x);
  )", &stats);
  // x = 13 cannot sink (a = a + x reads it) but can hoist.
  EXPECT_EQ(stats.hoisted, 1u);
  EXPECT_NE(text.find("x = 13;\n    lock(L);"), std::string::npos) << text;
}

TEST(Licm, ConflictingAccessStays) {
  LicmStats stats;
  moveCode(R"(
    int a; lock L;
    cobegin {
      thread { lock(L); a = a + 1; unlock(L); }
      thread { lock(L); a = a + 2; unlock(L); }
    }
    print(a);
  )", &stats);
  EXPECT_EQ(stats.hoisted + stats.sunk, 0u);
  EXPECT_EQ(stats.bodiesRemoved, 0u);
}

TEST(Licm, PrivateComputationMoves) {
  LicmStats stats;
  moveCode(R"(
    int a; lock L;
    cobegin {
      thread { int p; p = f(0); lock(L); a = a + 1; p = p * 2; unlock(L); print(p); }
      thread { lock(L); a = a + 2; unlock(L); }
    }
  )", &stats);
  EXPECT_EQ(stats.sunk, 1u);
}

TEST(Licm, DependentConsumerMaySinkPastUnlock) {
  // x = a conflicts (reads concurrently-written a) and must stay; its
  // consumer y = x may still sink below the unlock because x = a remains
  // ABOVE it — program order between them is preserved.
  ir::Program prog = parser::parseOrDie(R"(
    int a, x, y; lock L;
    cobegin {
      thread { lock(L); x = a; y = x; unlock(L); print(y); }
      thread { lock(L); a = 1; unlock(L); }
    }
  )");
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  LicmStats stats = moveLockIndependentCode(c);
  EXPECT_EQ(stats.sunk, 1u);
  EXPECT_EQ(stats.hoisted, 0u);
  const std::string text = ir::printProgram(prog);
  // x = a stays inside; y = x lands after the unlock.
  EXPECT_NE(text.find("lock(L);\n    x = a;"), std::string::npos) << text;
  EXPECT_NE(text.find("unlock(L);\n    y = x;"), std::string::npos) << text;
  for (const interp::RunResult& r : interp::runManySeeds(prog, 10)) {
    ASSERT_EQ(r.output.size(), 1u);
    EXPECT_TRUE(r.output[0] == 0 || r.output[0] == 1) << r.output[0];
  }
}

TEST(Licm, HoistBlockedByEarlierDependency) {
  // y = x cannot HOIST above x = a (its producer); the barrier check
  // must stop upward motion through a def of a used variable.
  LicmStats stats;
  const std::string text = moveCode(R"(
    int a, x, y; lock L;
    cobegin {
      thread { lock(L); x = a; y = x; a = a + y; unlock(L); print(y); }
      thread { lock(L); a = 1; unlock(L); }
    }
  )", &stats);
  // a = a + y pins y = x from below (sink blocked: its def y is used);
  // x = a pins it from above (hoist blocked: its use x is defined).
  EXPECT_EQ(stats.hoisted + stats.sunk, 0u);
  EXPECT_NE(text.find("x = a;\n    y = x;"), std::string::npos) << text;
}

TEST(Licm, RedefinitionBlocksSink) {
  // v = 1 cannot sink past v = 2 (order matters for the final value);
  // the strengthened legality check must catch this even though v = 1
  // has no "reached uses" in the body (A.5's condition alone would move
  // it).
  ir::Program prog = parser::parseOrDie(R"(
    int a, v; lock L;
    cobegin {
      thread { lock(L); v = 1; a = a + 1; v = 2; unlock(L); }
      thread { lock(L); a = a + 2; unlock(L); }
    }
    print(v);
  )");
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  moveLockIndependentCode(c);
  for (const interp::RunResult& r : interp::runManySeeds(prog, 10)) {
    ASSERT_EQ(r.output.size(), 1u);
    EXPECT_EQ(r.output[0], 2);  // v must still end at 2
  }
}

TEST(Licm, EventSyncBlocksMotion) {
  LicmStats stats;
  const std::string text = moveCode(R"(
    int a, x; lock L; event e;
    cobegin {
      thread { lock(L); x = 1; set(e); x = 2; unlock(L); print(x); }
      thread { lock(L); a = a + 1; unlock(L); wait(e); }
    }
  )", &stats);
  // Nothing may cross the set(e); motion in T0 stops there (backward
  // scan from unlock reaches x = 2 first — movable — then set stops it;
  // forward scan hits x = 1 then set).
  EXPECT_NE(text.find("set(e)"), std::string::npos);
  // x = 2 may sink (after the set), x = 1 may hoist (before it) — but
  // x = 1 would then pass x's... actually x=1 is before the set and
  // x=2's motion crossed nothing: allow what the implementation does,
  // but the set itself must never move:
  const std::string inside = text.substr(text.find("lock(L);"));
  EXPECT_LT(inside.find("set(e)"), inside.find("unlock(L)"));
}

TEST(Licm, CompoundIfMovesWhenFullyIndependent) {
  LicmStats stats;
  const std::string text = moveCode(R"(
    int a; lock L;
    cobegin {
      thread {
        int p; p = f(0);
        lock(L);
        a = a + 1;
        if (p > 0) { p = p + 1; } else { p = p - 1; }
        unlock(L);
        print(p);
      }
      thread { lock(L); a = a + 2; unlock(L); }
    }
  )", &stats);
  EXPECT_EQ(stats.sunk, 1u);  // the whole if moves as one unit
  EXPECT_NE(text.find("unlock(L);\n    if (p > 0)"), std::string::npos)
      << text;
}

TEST(Licm, CompoundWhileWithSharedUseStays) {
  LicmStats stats;
  moveCode(R"(
    int a; lock L;
    cobegin {
      thread {
        int p; p = 3;
        lock(L);
        while (p > 0) { a = a + p; p = p - 1; }
        unlock(L);
      }
      thread { lock(L); a = a + 2; unlock(L); }
    }
    print(a);
  )", &stats);
  EXPECT_EQ(stats.hoisted + stats.sunk, 0u);
}

TEST(Licm, EmptyBodyRemoved) {
  LicmStats stats;
  const std::string text = moveCode(R"(
    int x, y; lock L;
    cobegin {
      thread { lock(L); x = 1; unlock(L); }
      thread { lock(L); y = 2; unlock(L); }
    }
    print(x + y);
  )", &stats);
  // x and y are not concurrently accessed: both bodies empty out and the
  // lock/unlock pairs disappear.
  EXPECT_EQ(stats.bodiesRemoved, 2u);
  EXPECT_EQ(text.find("lock("), std::string::npos) << text;
}

TEST(Licm, CallsNeverMove) {
  LicmStats stats;
  const std::string text = moveCode(R"(
    int a; lock L;
    cobegin {
      thread { lock(L); f(1); a = a + 2; unlock(L); }
      thread { lock(L); a = a + 1; unlock(L); }
    }
    print(a);
  )", &stats);
  // The call may have arbitrary side effects: it must stay put even
  // though nothing else in the body depends on it.
  EXPECT_EQ(stats.hoisted + stats.sunk, 0u);
  EXPECT_NE(text.find("lock(L);\n    f(1);"), std::string::npos) << text;
}

TEST(Licm, IllFormedBodySkipped) {
  LicmStats stats;
  const std::string text = moveCode(R"(
    int a, x; lock L;
    cobegin {
      thread { lock(L); lock(L); x = 1; unlock(L); unlock(L); }
      thread { lock(L); a = 1; unlock(L); }
    }
    print(x);
  )", &stats);
  // Only the inner T0 pair and T1's pair are well-formed; x = 1 and
  // a = 1 (nothing conflicts with either) move out, emptying both. The
  // ill-formed outer lock/unlock pair must remain untouched.
  EXPECT_EQ(stats.bodiesRemoved, 2u);
  EXPECT_NE(text.find("lock(L)"), std::string::npos) << text;
  EXPECT_NE(text.find("unlock(L)"), std::string::npos) << text;
}

TEST(Licm, MultipleBodiesProcessed) {
  LicmStats stats;
  moveCode(R"(
    int a, x, y; lock L;
    cobegin {
      thread {
        lock(L); a = a + 1; x = 10; unlock(L);
        lock(L); a = a + 2; y = 20; unlock(L);
      }
      thread { lock(L); a = a + 3; unlock(L); }
    }
    print(x + y);
  )", &stats);
  EXPECT_EQ(stats.sunk, 2u);
}

TEST(Licm, OrderOfSunkStatementsPreserved) {
  ir::Program prog = parser::parseOrDie(R"(
    int a, x; lock L;
    cobegin {
      thread { lock(L); a = a + 1; x = 1; x = x + 1; unlock(L); }
      thread { lock(L); a = a + 2; unlock(L); }
    }
    print(x);
  )");
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  LicmStats stats = moveLockIndependentCode(c);
  EXPECT_EQ(stats.sunk, 2u);
  for (const interp::RunResult& r : interp::runManySeeds(prog, 10)) {
    ASSERT_EQ(r.output.size(), 1u);
    EXPECT_EQ(r.output[0], 2);  // x=1 then x=x+1, in that order
  }
}

TEST(Licm, LockHoldTimeShrinks) {
  ir::Program prog = parser::parseOrDie(R"(
    int a; lock L;
    cobegin {
      thread { int p; p = f(0); lock(L); a = a + 1; p = p * 2; p = p + 3; unlock(L); print(p); }
      thread { lock(L); a = a + 2; unlock(L); }
    }
  )");
  std::uint64_t before = 0, after = 0;
  for (const interp::RunResult& r : interp::runManySeeds(prog, 10))
    before += r.totalHoldSteps();
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  moveLockIndependentCode(c);
  for (const interp::RunResult& r : interp::runManySeeds(prog, 10))
    after += r.totalHoldSteps();
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace cssame::opt
