// Unit tests for may-happen-in-parallel analysis and conflict/sync edge
// computation (paper Definition 1: Ecf, Emutex, Edsync).
#include <gtest/gtest.h>

#include "src/analysis/concurrency.h"
#include "src/parser/parser.h"
#include "src/pfg/build.h"

namespace cssame::analysis {
namespace {

struct Fixture {
  ir::Program prog;
  pfg::Graph graph;
  Dominators dom;
  Mhp mhp;

  explicit Fixture(const char* src)
      : prog(parser::parseOrDie(src)),
        graph(pfg::buildPfg(prog)),
        dom(graph, Dominators::Direction::Forward),
        mhp(graph, dom) {
    computeSyncAndConflictEdges(graph, mhp);
  }

  NodeId nodeWithConst(long long v) {
    for (const pfg::Node& n : graph.nodes())
      for (const ir::Stmt* s : n.stmts)
        if (s->kind == ir::StmtKind::Assign &&
            s->expr->kind == ir::ExprKind::IntConst && s->expr->intValue == v)
          return n.id;
    ADD_FAILURE() << "no node assigning " << v;
    return NodeId{};
  }
};

TEST(Mhp, SiblingThreadsAreConcurrent) {
  Fixture f(R"(
    int a;
    a = 0;
    cobegin {
      thread { a = 1; }
      thread { a = 2; }
    }
    a = 3;
  )");
  const NodeId t0 = f.nodeWithConst(1);
  const NodeId t1 = f.nodeWithConst(2);
  const NodeId before = f.nodeWithConst(0);
  const NodeId after = f.nodeWithConst(3);
  EXPECT_TRUE(f.mhp.mayHappenInParallel(t0, t1));
  EXPECT_FALSE(f.mhp.mayHappenInParallel(before, t0));
  EXPECT_FALSE(f.mhp.mayHappenInParallel(t1, after));
  EXPECT_FALSE(f.mhp.mayHappenInParallel(t0, t0));
}

TEST(Mhp, SameThreadSequentialNodes) {
  Fixture f(R"(
    int a; lock L;
    cobegin {
      thread { a = 1; lock(L); a = 2; unlock(L); }
      thread { a = 3; }
    }
  )");
  const NodeId first = f.nodeWithConst(1);
  const NodeId second = f.nodeWithConst(2);
  EXPECT_FALSE(f.mhp.mayHappenInParallel(first, second));
}

TEST(Mhp, NestedCobegin) {
  Fixture f(R"(
    int a;
    cobegin {
      thread {
        cobegin {
          thread { a = 1; }
          thread { a = 2; }
        }
        a = 3;
      }
      thread { a = 4; }
    }
  )");
  const NodeId inner0 = f.nodeWithConst(1);
  const NodeId inner1 = f.nodeWithConst(2);
  const NodeId afterInner = f.nodeWithConst(3);
  const NodeId sibling = f.nodeWithConst(4);
  EXPECT_TRUE(f.mhp.mayHappenInParallel(inner0, inner1));
  EXPECT_TRUE(f.mhp.mayHappenInParallel(inner0, sibling));
  EXPECT_TRUE(f.mhp.mayHappenInParallel(afterInner, sibling));
  EXPECT_FALSE(f.mhp.mayHappenInParallel(inner0, afterInner));
}

TEST(Mhp, SetWaitEstablishesOrdering) {
  Fixture f(R"(
    int a; event e;
    cobegin {
      thread { a = 1; set(e); a = 2; }
      thread { wait(e); a = 3; }
    }
  )");
  const NodeId beforeSet = f.nodeWithConst(1);
  const NodeId afterSet = f.nodeWithConst(2);
  const NodeId afterWait = f.nodeWithConst(3);
  // a=1 dominates set(e); wait(e) dominates a=3 → ordered, not parallel.
  EXPECT_TRUE(f.mhp.orderedBefore(beforeSet, afterWait));
  EXPECT_FALSE(f.mhp.mayHappenInParallel(beforeSet, afterWait));
  // a=2 is after the set: no ordering with a=3.
  EXPECT_FALSE(f.mhp.orderedBefore(afterSet, afterWait));
  EXPECT_TRUE(f.mhp.mayHappenInParallel(afterSet, afterWait));
  // The conflict relation ignores the ordering (dataflow still crosses).
  EXPECT_TRUE(f.mhp.conflicting(beforeSet, afterWait));
}

TEST(Mhp, ConditionalSetStillOrdersDominatedPrefix) {
  // The set sits under a branch, but a=1 dominates it, so the ordering
  // a=1 ≺ a=3 is still sound: if the set never fires, the wait blocks
  // and a=3 never executes (the ordering holds vacuously).
  Fixture f(R"(
    int a, c; event e;
    cobegin {
      thread { a = 1; if (c > 0) { set(e); } }
      thread { wait(e); a = 3; }
    }
  )");
  const NodeId def = f.nodeWithConst(1);
  const NodeId use = f.nodeWithConst(3);
  EXPECT_TRUE(f.mhp.orderedBefore(def, use));
  EXPECT_FALSE(f.mhp.mayHappenInParallel(def, use));
}

TEST(Mhp, UseBeforeWaitNotOrdered) {
  // A node NOT dominated by the wait gets no ordering.
  Fixture f(R"(
    int a; event e;
    cobegin {
      thread { a = 1; set(e); }
      thread { a = 3; wait(e); }
    }
  )");
  const NodeId def = f.nodeWithConst(1);
  const NodeId use = f.nodeWithConst(3);
  EXPECT_FALSE(f.mhp.orderedBefore(def, use));
  EXPECT_TRUE(f.mhp.mayHappenInParallel(def, use));
}

TEST(ConflictEdges, DefUseAndDefDef) {
  Fixture f(R"(
    int a, b;
    cobegin {
      thread { a = 1; }
      thread { b = a; }
      thread { a = 2; }
    }
  )");
  std::size_t du = 0, dd = 0;
  for (const pfg::ConflictEdge& e : f.graph.conflicts) {
    EXPECT_EQ(f.prog.symbols.nameOf(e.var), "a");
    if (e.toIsDef) ++dd;
    else ++du;
  }
  // DU: a=1 -> (b=a), a=2 -> (b=a). DD: a=1 <-> a=2 both directions.
  EXPECT_EQ(du, 2u);
  EXPECT_EQ(dd, 2u);
}

TEST(ConflictEdges, PrivateVariablesExcluded) {
  Fixture f(R"(
    cobegin {
      thread { int p; p = 1; p = p + 1; }
      thread { int q; q = 2; }
    }
  )");
  EXPECT_TRUE(f.graph.conflicts.empty());
}

TEST(ConflictEdges, NoConflictWithoutConcurrency) {
  Fixture f("int a; a = 1; a = 2; print(a);");
  EXPECT_TRUE(f.graph.conflicts.empty());
}

TEST(ConflictEdges, ConditionUsesConflict) {
  Fixture f(R"(
    int a;
    cobegin {
      thread { a = 1; }
      thread { if (a > 0) { print(1); } }
    }
  )");
  ASSERT_EQ(f.graph.conflicts.size(), 1u);
  EXPECT_FALSE(f.graph.conflicts[0].toIsDef);
}

TEST(SyncEdges, MutexEdgesPairConcurrentLockUnlock) {
  Fixture f(R"(
    int a; lock L, M;
    cobegin {
      thread { lock(L); a = 1; unlock(L); }
      thread { lock(L); a = 2; unlock(L); lock(M); a = 3; unlock(M); }
    }
  )");
  // L: lock(T0)-unlock(T1) and lock(T1)-unlock(T0). M has no concurrent
  // counterpart (only used in one thread).
  EXPECT_EQ(f.graph.mutexEdges.size(), 2u);
  for (const pfg::MutexEdge& e : f.graph.mutexEdges)
    EXPECT_EQ(f.prog.symbols.nameOf(e.lockVar), "L");
}

TEST(SyncEdges, DsyncEdgesPairSetWait) {
  Fixture f(R"(
    event e, unused;
    cobegin {
      thread { set(e); }
      thread { wait(e); }
    }
  )");
  ASSERT_EQ(f.graph.dsyncEdges.size(), 1u);
  EXPECT_EQ(f.prog.symbols.nameOf(f.graph.dsyncEdges[0].eventVar), "e");
}

TEST(AccessSites, CollectsDefsAndUses) {
  Fixture f(R"(
    int a, b;
    a = 1;
    cobegin {
      thread { a = a + b; }
      thread { b = 2; }
    }
  )");
  AccessSites sites = collectAccessSites(f.graph);
  const SymbolId a = f.prog.symbols.lookup("a");
  const SymbolId b = f.prog.symbols.lookup("b");
  EXPECT_EQ(sites.defs[a].size(), 2u);  // a=1, a=a+b
  EXPECT_EQ(sites.uses[a].size(), 1u);  // a in a+b
  EXPECT_EQ(sites.defs[b].size(), 1u);
  EXPECT_EQ(sites.uses[b].size(), 1u);
}

}  // namespace
}  // namespace cssame::analysis
