// Determinism of the parallel schedule explorer.
//
// exploreAllSchedules promises a result that is byte-identical for every
// worker count — the layered frontier phases, the shard-ownership
// deduplication and the monotonic budget counters make the outcome a
// function of the program alone (docs/PERFORMANCE.md). This test sweeps
// >= 50 workloads — including budget-exhausted configurations, where
// determinism is hardest (the trip point must not depend on thread
// scheduling) — and requires field-by-field equality of ExploreResult
// across workers = 1, 2 and 8.
#include <gtest/gtest.h>

#include <string>

#include "src/interp/explore.h"
#include "src/parser/parser.h"
#include "src/support/budget.h"
#include "src/support/threadpool.h"
#include "src/workload/generator.h"
#include "src/workload/paper_programs.h"

namespace cssame::interp {
namespace {

/// Every observable field must match exactly; no tolerance anywhere.
void expectSameResult(const ExploreResult& a, const ExploreResult& b,
                      const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.budgetExceeded, b.budgetExceeded);
  EXPECT_EQ(a.anyDeadlock, b.anyDeadlock);
  EXPECT_EQ(a.anyLockError, b.anyLockError);
  EXPECT_EQ(a.statesExplored, b.statesExplored);
  EXPECT_EQ(a.racedVars, b.racedVars);
  EXPECT_EQ(a.observedRanges, b.observedRanges);
  EXPECT_EQ(a.anyAssertFailure, b.anyAssertFailure);
}

/// Explores `prog` with workers 1, 2 and 8 and requires identical results.
void checkDeterminism(const ir::Program& prog, ExploreOptions opts,
                      const std::string& label) {
  SCOPED_TRACE(label);
  opts.workers = 1;
  const ExploreResult serial = exploreAllSchedules(prog, opts);
  opts.workers = 2;
  const ExploreResult two = exploreAllSchedules(prog, opts);
  opts.workers = 8;
  const ExploreResult eight = exploreAllSchedules(prog, opts);
  expectSameResult(serial, two, "workers=2 vs workers=1");
  expectSameResult(serial, eight, "workers=8 vs workers=1");
}

/// Small option set that keeps the racy generator programs explorable.
ExploreOptions smallBudget() {
  ExploreOptions opts;
  opts.maxSteps = 1u << 14;
  opts.maxStates = 1u << 12;
  opts.detectRaces = true;
  opts.recordValues = true;
  return opts;
}

TEST(ExploreParallel, RandomWorkloadSweep) {
  // 30 racy random programs with race detection and value recording on —
  // the merge paths (set union, min/max) must all be order-independent.
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    workload::GeneratorConfig cfg;
    cfg.seed = seed;
    cfg.threads = 2 + static_cast<int>(seed % 2);
    cfg.sharedVars = 3;
    cfg.locks = 2;
    cfg.stmtsPerThread = 3 + static_cast<int>(seed % 2);
    cfg.maxDepth = 1;
    cfg.loopProb = 0.0;
    cfg.lockedFraction = 0.25 * static_cast<double>(seed % 4);
    cfg.determinate = false;
    checkDeterminism(workload::generateRandom(cfg), smallBudget(),
                     "generateRandom seed=" + std::to_string(seed));
  }
}

TEST(ExploreParallel, LockStructuredSweep) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const double lockedFraction = 0.25 * static_cast<double>(seed % 5);
    checkDeterminism(
        workload::makeLockStructured(2, 1, 2 + static_cast<int>(seed % 2),
                                     lockedFraction, seed),
        smallBudget(), "makeLockStructured seed=" + std::to_string(seed));
  }
}

TEST(ExploreParallel, BudgetExhaustedRuns) {
  // Programs too big for their budgets: the trip point (which budget, how
  // many states) must still be schedule-independent. Cover each budget
  // kind separately.
  workload::GeneratorConfig cfg;
  cfg.threads = 3;
  cfg.sharedVars = 3;
  cfg.locks = 1;
  cfg.stmtsPerThread = 5;
  cfg.maxDepth = 1;
  cfg.loopProb = 0.0;
  cfg.determinate = false;
  for (std::uint64_t seed = 100; seed < 103; ++seed) {
    cfg.seed = seed;
    const ir::Program prog = workload::generateRandom(cfg);

    ExploreOptions steps = smallBudget();
    steps.maxSteps = 64;
    checkDeterminism(prog, steps, "maxSteps=64 seed=" + std::to_string(seed));

    ExploreOptions states = smallBudget();
    states.maxStates = 16;
    checkDeterminism(prog, states,
                     "maxStates=16 seed=" + std::to_string(seed));

    ExploreOptions depth = smallBudget();
    depth.maxDepthPerRun = 3;
    checkDeterminism(prog, depth,
                     "maxDepthPerRun=3 seed=" + std::to_string(seed));

    ExploreOptions memory = smallBudget();
    memory.maxMemoryBytes = 16u << 10;
    checkDeterminism(prog, memory,
                     "maxMemoryBytes=16K seed=" + std::to_string(seed));
  }
}

TEST(ExploreParallel, AdversarialPrograms) {
  // Deadlocks, lock errors, assert failures, events and barriers: the
  // flag-merging paths beyond plain output collection.
  checkDeterminism(parser::parseOrDie(R"(
    lock A, B;
    cobegin {
      thread { lock(A); lock(B); unlock(B); unlock(A); }
      thread { lock(B); lock(A); unlock(A); unlock(B); }
    }
  )"),
                   smallBudget(), "lock-order deadlock");
  checkDeterminism(parser::parseOrDie(R"(
    lock L; int a;
    cobegin {
      thread { unlock(L); a = 1; }
      thread { a = 2; }
    }
  )"),
                   smallBudget(), "unlock without holding");
  checkDeterminism(parser::parseOrDie(R"(
    int a;
    cobegin {
      thread { a = a + 1; }
      thread { a = a + 1; }
    }
    assert(a == 2);
  )"),
                   smallBudget(), "assert over racy sum");
  checkDeterminism(parser::parseOrDie(R"(
    int a; event e;
    cobegin {
      thread { a = 1; set(e); }
      thread { wait(e); print(a); }
    }
  )"),
                   smallBudget(), "set/wait ordering");
  checkDeterminism(parser::parseOrDie(R"(
    int a; int b;
    cobegin {
      thread { a = 1; barrier; b = a; }
      thread { b = 2; barrier; print(b); }
    }
  )"),
                   smallBudget(), "barrier rendezvous");
  checkDeterminism(parser::parseOrDie(workload::figure2Source()),
                   smallBudget(), "paper figure 2");
}

TEST(ExploreParallel, TsoStoreBufferSweep) {
  // Under MemoryModel::TSO every state carries per-thread store buffers
  // and the action set includes flushes; the layered phases must still
  // make the result a pure function of the program. Random racy programs
  // (some with fences and atomics) plus the store-buffering litmus.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    workload::GeneratorConfig cfg;
    cfg.seed = seed;
    cfg.threads = 2;
    cfg.sharedVars = 3;
    cfg.locks = 1;
    cfg.stmtsPerThread = 3;
    cfg.maxDepth = 1;
    cfg.loopProb = 0.0;
    cfg.lockedFraction = 0.25 * static_cast<double>(seed % 3);
    cfg.determinate = false;
    cfg.fenceProb = seed % 2 == 0 ? 0.2 : 0.0;
    cfg.atomicFraction = seed % 3 == 0 ? 0.5 : 0.0;
    ExploreOptions opts = smallBudget();
    opts.model = support::MemoryModel::TSO;
    checkDeterminism(workload::generateRandom(cfg), opts,
                     "tso generateRandom seed=" + std::to_string(seed));
  }
  ExploreOptions opts = smallBudget();
  opts.model = support::MemoryModel::TSO;
  checkDeterminism(parser::parseOrDie(R"(
    int x, y, r0, r1;
    cobegin {
      thread { x = 1; r0 = y; }
      thread { y = 1; r1 = x; }
    }
    print(r0); print(r1);
  )"),
                   opts, "store-buffering litmus under TSO");
}

TEST(ExploreParallel, PooledOverloadMatchesOwnedWorkers) {
  // The pool-reusing overload must agree with the owning overload.
  workload::GeneratorConfig cfg;
  cfg.seed = 7;
  cfg.threads = 2;
  cfg.sharedVars = 3;
  cfg.locks = 1;
  cfg.stmtsPerThread = 4;
  cfg.maxDepth = 1;
  cfg.loopProb = 0.0;
  cfg.determinate = false;
  const ir::Program prog = workload::generateRandom(cfg);
  ExploreOptions opts = smallBudget();
  opts.workers = 1;
  const ExploreResult serial = exploreAllSchedules(prog, opts);
  support::ThreadPool pool(4);
  const ExploreResult pooled = exploreAllSchedules(prog, opts, pool);
  expectSameResult(serial, pooled, "pooled(4) vs workers=1");
  // Same pool, second program: reuse must not leak state between runs.
  const ExploreResult pooledAgain = exploreAllSchedules(prog, opts, pool);
  expectSameResult(serial, pooledAgain, "pool reuse");
}

}  // namespace
}  // namespace cssame::interp
