// Brute-force validation of the dominator machinery: on randomly
// generated programs, dominates(a, b) computed by the iterative algorithm
// must agree with the definition — a dominates b iff removing a makes b
// unreachable from the root. Same for post-dominators on the reverse
// graph, and frontier membership is checked against its definition.
#include <gtest/gtest.h>

#include <set>

#include "src/analysis/dominance.h"
#include "src/pfg/build.h"
#include "src/workload/generator.h"

namespace cssame::analysis {
namespace {

/// Reachability from `root` along succ/pred edges, skipping `removed`.
std::vector<bool> reachAvoiding(const pfg::Graph& g, NodeId root,
                                NodeId removed, bool forward) {
  std::vector<bool> seen(g.size(), false);
  if (root == removed) return seen;
  std::vector<NodeId> work{root};
  seen[root.index()] = true;
  while (!work.empty()) {
    const NodeId cur = work.back();
    work.pop_back();
    const auto& next =
        forward ? g.node(cur).succs : g.node(cur).preds;
    for (NodeId n : next) {
      if (n == removed || seen[n.index()]) continue;
      seen[n.index()] = true;
      work.push_back(n);
    }
  }
  return seen;
}

class DominanceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DominanceProperty, MatchesBruteForceDefinition) {
  workload::GeneratorConfig cfg;
  cfg.seed = GetParam();
  cfg.threads = 2 + static_cast<int>(GetParam() % 3);
  cfg.stmtsPerThread = 10;
  cfg.branchProb = 0.35;
  cfg.loopProb = 0.25;
  ir::Program prog = workload::generateRandom(cfg);
  pfg::Graph g = pfg::buildPfg(prog);
  Dominators dom(g, Dominators::Direction::Forward);
  Dominators pdom(g, Dominators::Direction::Reverse);

  // Baseline reachability (nothing removed) to restrict to live nodes.
  const std::vector<bool> reachable =
      reachAvoiding(g, g.entry, NodeId{0xfffffffeu}, true);

  for (const pfg::Node& a : g.nodes()) {
    if (!reachable[a.id.index()]) continue;
    // Removing a: which nodes become unreachable? Exactly the ones a
    // strictly dominates (plus a itself).
    const std::vector<bool> without =
        reachAvoiding(g, g.entry, a.id, true);
    for (const pfg::Node& b : g.nodes()) {
      if (!reachable[b.id.index()]) continue;
      const bool brute = a.id == b.id || !without[b.id.index()];
      EXPECT_EQ(dom.dominates(a.id, b.id), brute)
          << "dom #" << a.id.value() << " vs #" << b.id.value()
          << " seed " << GetParam();
    }
  }

  // Post-dominance: same definition on the reverse graph.
  for (const pfg::Node& a : g.nodes()) {
    if (!reachable[a.id.index()]) continue;
    const std::vector<bool> without =
        reachAvoiding(g, g.exit, a.id, false);
    for (const pfg::Node& b : g.nodes()) {
      if (!reachable[b.id.index()]) continue;
      const bool brute = a.id == b.id || !without[b.id.index()];
      EXPECT_EQ(pdom.dominates(a.id, b.id), brute)
          << "pdom #" << a.id.value() << " vs #" << b.id.value()
          << " seed " << GetParam();
    }
  }
}

TEST_P(DominanceProperty, FrontierDefinition) {
  // y ∈ DF(x) iff x dominates some predecessor of y but does not
  // strictly dominate y.
  workload::GeneratorConfig cfg;
  cfg.seed = GetParam() + 1000;
  cfg.threads = 2;
  cfg.stmtsPerThread = 12;
  cfg.branchProb = 0.4;
  cfg.loopProb = 0.3;
  ir::Program prog = workload::generateRandom(cfg);
  pfg::Graph g = pfg::buildPfg(prog);
  Dominators dom(g, Dominators::Direction::Forward);

  for (const pfg::Node& x : g.nodes()) {
    if (!dom.reachable(x.id)) continue;
    std::set<NodeId> expected;
    for (const pfg::Node& y : g.nodes()) {
      if (!dom.reachable(y.id)) continue;
      bool domsAPred = false;
      for (NodeId p : y.preds)
        if (dom.reachable(p) && dom.dominates(x.id, p)) domsAPred = true;
      if (domsAPred && !dom.strictlyDominates(x.id, y.id))
        expected.insert(y.id);
    }
    std::set<NodeId> actual(dom.frontier(x.id).begin(),
                            dom.frontier(x.id).end());
    EXPECT_EQ(actual, expected) << "node #" << x.id.value();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominanceProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace cssame::analysis
