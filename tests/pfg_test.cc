// Unit tests for Parallel Flow Graph construction (paper Definition 1):
// block formation, dedicated lock/unlock nodes, branch successor order,
// fork/join shape, thread paths and the DOT export.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/analysis/concurrency.h"
#include "src/parser/parser.h"
#include "src/pfg/build.h"
#include "src/pfg/dot.h"
#include "src/pfg/verify.h"

namespace cssame::pfg {
namespace {

std::size_t countKind(const Graph& g, NodeKind k) {
  std::size_t n = 0;
  for (const Node& node : g.nodes()) n += node.kind == k;
  return n;
}

TEST(PfgBuild, StraightLineIsOneBlock) {
  ir::Program p = parser::parseOrDie("int a; a = 1; a = 2; a = a + 1;");
  Graph g = buildPfg(p);
  EXPECT_EQ(countKind(g, NodeKind::Entry), 1u);
  EXPECT_EQ(countKind(g, NodeKind::Exit), 1u);
  // entry -> block(3 stmts) -> exit
  bool found = false;
  for (const Node& n : g.nodes())
    if (n.kind == NodeKind::Block && n.stmts.size() == 3) found = true;
  EXPECT_TRUE(found);
}

TEST(PfgBuild, LockUnlockGetOwnNodes) {
  // Definition 1.3: Lock and Unlock are represented by their own nodes.
  ir::Program p =
      parser::parseOrDie("int a; lock L; a = 1; lock(L); a = 2; unlock(L); a = 3;");
  Graph g = buildPfg(p);
  EXPECT_EQ(countKind(g, NodeKind::Lock), 1u);
  EXPECT_EQ(countKind(g, NodeKind::Unlock), 1u);
  // The lock splits the statements into separate blocks.
  for (const Node& n : g.nodes()) {
    if (n.kind != NodeKind::Block) continue;
    for (const ir::Stmt* s : n.stmts) {
      EXPECT_NE(s->kind, ir::StmtKind::Lock);
      EXPECT_NE(s->kind, ir::StmtKind::Unlock);
    }
  }
}

TEST(PfgBuild, IfBranchSuccessorOrder) {
  ir::Program p = parser::parseOrDie(
      "int a; if (a > 0) { a = 1; } else { a = 2; } a = 3;");
  Graph g = buildPfg(p);
  const Node* branch = nullptr;
  for (const Node& n : g.nodes())
    if (n.terminator != nullptr) branch = &n;
  ASSERT_NE(branch, nullptr);
  ASSERT_EQ(branch->succs.size(), 2u);
  // succs[0] = then entry; its block contains a = 1.
  const Node& thenEntry = g.node(branch->succs[0]);
  ASSERT_FALSE(thenEntry.stmts.empty());
  EXPECT_EQ(thenEntry.stmts[0]->expr->intValue, 1);
  const Node& elseEntry = g.node(branch->succs[1]);
  ASSERT_FALSE(elseEntry.stmts.empty());
  EXPECT_EQ(elseEntry.stmts[0]->expr->intValue, 2);
}

TEST(PfgBuild, IfWithoutElseFallsThrough) {
  ir::Program p = parser::parseOrDie("int a; if (a > 0) { a = 1; } a = 3;");
  Graph g = buildPfg(p);
  const Node* branch = nullptr;
  for (const Node& n : g.nodes())
    if (n.terminator != nullptr) branch = &n;
  ASSERT_NE(branch, nullptr);
  ASSERT_EQ(branch->succs.size(), 2u);
  // succs[1] goes straight to the join.
  const Node& join = g.node(branch->succs[1]);
  EXPECT_TRUE(join.kind == NodeKind::Block);
}

TEST(PfgBuild, WhileLoopShape) {
  ir::Program p =
      parser::parseOrDie("int a; while (a < 5) { a = a + 1; } print(a);");
  Graph g = buildPfg(p);
  const Node* header = nullptr;
  for (const Node& n : g.nodes())
    if (n.terminator != nullptr && n.terminator->kind == ir::StmtKind::While)
      header = &n;
  ASSERT_NE(header, nullptr);
  ASSERT_EQ(header->succs.size(), 2u);
  // Body must loop back to the header.
  const NodeId bodyEntry = header->succs[0];
  bool loopsBack = false;
  std::vector<NodeId> work{bodyEntry};
  std::vector<bool> seen(g.size(), false);
  while (!work.empty()) {
    NodeId cur = work.back();
    work.pop_back();
    if (seen[cur.index()]) continue;
    seen[cur.index()] = true;
    for (NodeId s : g.node(cur).succs) {
      if (s == header->id) loopsBack = true;
      else if (!seen[s.index()]) work.push_back(s);
    }
  }
  EXPECT_TRUE(loopsBack);
}

TEST(PfgBuild, CobeginForkJoin) {
  ir::Program p = parser::parseOrDie(R"(
    int a;
    cobegin {
      thread { a = 1; }
      thread { a = 2; }
      thread { a = 3; }
    }
    print(a);
  )");
  Graph g = buildPfg(p);
  EXPECT_EQ(countKind(g, NodeKind::Cobegin), 1u);
  EXPECT_EQ(countKind(g, NodeKind::Coend), 1u);
  const Node* fork = nullptr;
  const Node* join = nullptr;
  for (const Node& n : g.nodes()) {
    if (n.kind == NodeKind::Cobegin) fork = &n;
    if (n.kind == NodeKind::Coend) join = &n;
  }
  ASSERT_NE(fork, nullptr);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(fork->succs.size(), 3u);
  EXPECT_EQ(join->preds.size(), 3u);
}

TEST(PfgBuild, ThreadPaths) {
  ir::Program p = parser::parseOrDie(R"(
    int a;
    cobegin {
      thread { a = 1; }
      thread {
        cobegin {
          thread { a = 2; }
          thread { a = 3; }
        }
      }
    }
  )");
  Graph g = buildPfg(p);
  // Find the node containing a = 3: path depth 2, inner index 1.
  for (const Node& n : g.nodes()) {
    if (n.kind != NodeKind::Block) continue;
    for (const ir::Stmt* s : n.stmts) {
      if (s->expr->kind == ir::ExprKind::IntConst && s->expr->intValue == 3) {
        ASSERT_EQ(n.threadPath.size(), 2u);
        EXPECT_EQ(n.threadPath[0].threadIndex, 1u);
        EXPECT_EQ(n.threadPath[1].threadIndex, 1u);
      }
      if (s->expr->kind == ir::ExprKind::IntConst && s->expr->intValue == 1) {
        ASSERT_EQ(n.threadPath.size(), 1u);
        EXPECT_EQ(n.threadPath[0].threadIndex, 0u);
      }
    }
  }
}

TEST(PfgBuild, StmtToNodeMapping) {
  ir::Program p = parser::parseOrDie(
      "int a; lock L; a = 1; lock(L); if (a > 0) { a = 2; } unlock(L);");
  Graph g = buildPfg(p);
  ir::forEachStmt(p.body, [&](const ir::Stmt& s) {
    const NodeId n = g.nodeOf(&s);
    ASSERT_TRUE(n.valid()) << ir::stmtKindName(s.kind);
    switch (s.kind) {
      case ir::StmtKind::Lock:
        EXPECT_EQ(g.node(n).kind, NodeKind::Lock);
        break;
      case ir::StmtKind::Unlock:
        EXPECT_EQ(g.node(n).kind, NodeKind::Unlock);
        break;
      case ir::StmtKind::If:
        EXPECT_EQ(g.node(n).terminator, &s);
        break;
      default:
        break;
    }
  });
}

TEST(PfgBuild, EdgesAreConsistent) {
  ir::Program p = parser::parseOrDie(R"(
    int a; lock L;
    cobegin {
      thread { lock(L); if (a > 1) { a = 2; } unlock(L); }
      thread { while (a < 9) { a = a + 1; } }
    }
  )");
  Graph g = buildPfg(p);
  for (const Node& n : g.nodes()) {
    for (NodeId s : n.succs) {
      const auto& preds = g.node(s).preds;
      EXPECT_NE(std::find(preds.begin(), preds.end(), n.id), preds.end());
    }
    for (NodeId pr : n.preds) {
      const auto& succs = g.node(pr).succs;
      EXPECT_NE(std::find(succs.begin(), succs.end(), n.id), succs.end());
    }
  }
}

TEST(PfgVerify, AcceptsWellFormedGraphs) {
  const char* programs[] = {
      "int a; a = 1;",
      "int a; if (a > 0) { a = 1; } else { a = 2; }",
      "int a; while (a < 5) { a = a + 1; }",
      "int a; lock L; lock(L); a = 1; unlock(L);",
      R"(int a; event e; barrier;
         cobegin { thread { a = 1; set(e); } thread { wait(e); } })",
      "int s; doall i = 0, 2 { s = s + i; }",
  };
  for (const char* src : programs) {
    ir::Program p = parser::parseOrDie(src);
    Graph g = buildPfg(p);
    const auto problems = verifyGraph(g);
    EXPECT_TRUE(problems.empty())
        << src << "\n"
        << (problems.empty() ? "" : problems.front());
  }
}

TEST(PfgVerify, DetectsBrokenEdges) {
  ir::Program p = parser::parseOrDie("int a; a = 1;");
  Graph g = buildPfg(p);
  // Sabotage: drop one predecessor record.
  for (Node& n : g.nodes()) {
    if (!n.preds.empty()) {
      n.preds.clear();
      break;
    }
  }
  EXPECT_FALSE(verifyGraph(g).empty());
}

TEST(Dot, ContainsNodesAndSyncEdges) {
  ir::Program p = parser::parseOrDie(R"(
    int a; lock L;
    cobegin {
      thread { lock(L); a = 1; unlock(L); }
      thread { lock(L); a = 2; unlock(L); }
    }
  )");
  Graph g = buildPfg(p);
  // Populate sync/conflict edges the way the pipeline does.
  analysis::Dominators dom(g, analysis::Dominators::Direction::Forward);
  analysis::Mhp mhp(g, dom);
  analysis::computeSyncAndConflictEdges(g, mhp);

  const std::string dot = toDot(g);
  EXPECT_NE(dot.find("digraph PFG"), std::string::npos);
  EXPECT_NE(dot.find("style=dotted"), std::string::npos);  // mutex edges
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // conflict edges
  EXPECT_NE(dot.find("a = 1"), std::string::npos);
}

}  // namespace
}  // namespace cssame::pfg
