// Unit tests for CSSA π-term placement: which uses get π terms, their
// control and conflict arguments.
#include <gtest/gtest.h>

#include "src/driver/pipeline.h"
#include "src/parser/parser.h"

namespace cssame::cssa {
namespace {

struct Fixture {
  ir::Program prog;
  driver::Compilation comp;

  explicit Fixture(const char* src, bool cssame = false)
      : prog(parser::parseOrDie(src)),
        comp(driver::analyze(prog,
                             {.enableCssame = cssame, .warnings = false})) {}

  /// π definitions for variable `var`, by name.
  std::vector<const ssa::Definition*> pisOn(const std::string& var) {
    std::vector<const ssa::Definition*> out;
    for (SsaNameId id : comp.ssa().livePis()) {
      const ssa::Definition& d = comp.ssa().def(id);
      if (prog.symbols.nameOf(d.var) == var) out.push_back(&d);
    }
    return out;
  }
};

TEST(PiPlacement, ConcurrentDefCreatesPi) {
  Fixture f(R"(
    int a, b;
    cobegin {
      thread { b = a; }
      thread { a = 1; }
    }
  )");
  auto pis = f.pisOn("a");
  ASSERT_EQ(pis.size(), 1u);
  EXPECT_EQ(pis[0]->piConflictArgs.size(), 1u);
  // Control argument is the sequential reaching def (entry).
  EXPECT_EQ(f.comp.ssa().def(pis[0]->piControlArg).kind,
            ssa::DefKind::Entry);
}

TEST(PiPlacement, NoPiWithoutConcurrency) {
  Fixture f("int a, b; a = 1; b = a;");
  EXPECT_EQ(f.comp.ssa().countLivePis(), 0u);
}

TEST(PiPlacement, PrivateVarsNeverGetPis) {
  Fixture f(R"(
    int s;
    cobegin {
      thread { int p; p = 1; p = p + 1; s = p; }
      thread { s = 2; }
    }
  )");
  EXPECT_TRUE(f.pisOn("p").empty());
}

TEST(PiPlacement, OneArgPerConcurrentDefSite) {
  Fixture f(R"(
    int a, b;
    cobegin {
      thread { b = a; }
      thread { a = 1; a = 2; }
      thread { a = 3; }
    }
  )");
  auto pis = f.pisOn("a");
  ASSERT_EQ(pis.size(), 1u);
  EXPECT_EQ(pis[0]->piConflictArgs.size(), 3u);
}

TEST(PiPlacement, EachUseGetsItsOwnPi) {
  Fixture f(R"(
    int a, b, c;
    cobegin {
      thread { b = a; c = a; }
      thread { a = 1; }
    }
  )");
  EXPECT_EQ(f.pisOn("a").size(), 2u);
}

TEST(PiPlacement, ConditionUsesGetPis) {
  Fixture f(R"(
    int a, b;
    cobegin {
      thread { if (a > 0) { b = 1; } while (a < 9) { b = 2; } }
      thread { a = 1; }
    }
  )");
  // One π for the if condition, one for the while condition.
  EXPECT_EQ(f.pisOn("a").size(), 2u);
}

TEST(PiPlacement, UseAfterCoendHasNoPi) {
  Fixture f(R"(
    int a, b;
    cobegin {
      thread { a = 1; }
      thread { a = 2; }
    }
    b = a;
  )");
  // The read is sequential (after the join): coend φ, not π.
  EXPECT_TRUE(f.pisOn("a").empty());
}

TEST(PiPlacement, SameBlockDefStillGetsPi) {
  // Interleaving is statement-granular: even a use immediately after a
  // same-thread def can observe a concurrent write (Figure 3a: ta1).
  Fixture f(R"(
    int a, b;
    cobegin {
      thread { a = 5; b = a; }
      thread { a = 6; }
    }
  )");
  auto pis = f.pisOn("a");
  ASSERT_EQ(pis.size(), 1u);
  // Control arg is the same-block def a=5.
  const ssa::Definition& ctrl = f.comp.ssa().def(pis[0]->piControlArg);
  ASSERT_EQ(ctrl.kind, ssa::DefKind::Assign);
  EXPECT_EQ(ctrl.stmt->expr->intValue, 5);
}

TEST(PiPlacement, OrderedThreadsStillConflict) {
  // set/wait ordering must NOT remove π terms (the definition still
  // flows to the use; see analysis::Mhp::conflicting).
  Fixture f(R"(
    int a, b; event e;
    cobegin {
      thread { a = 1; set(e); }
      thread { wait(e); b = a; }
    }
  )");
  EXPECT_EQ(f.pisOn("a").size(), 1u);
}

TEST(PiPlacement, StatsMatchForm) {
  Fixture f(R"(
    int a, b;
    cobegin {
      thread { b = a; b = a + a; }
      thread { a = 1; }
    }
  )");
  EXPECT_EQ(f.comp.piStats().pisPlaced, f.comp.ssa().countLivePis());
  EXPECT_EQ(f.comp.piStats().conflictArgs,
            f.comp.ssa().countPiConflictArgs());
  // b = a + a has two uses → two πs; b = a one more.
  EXPECT_EQ(f.comp.ssa().countLivePis(), 3u);
}

}  // namespace
}  // namespace cssame::cssa
