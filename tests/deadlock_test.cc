// Tests for static deadlock detection (lock-order cycles) and for copy
// propagation.
#include <gtest/gtest.h>

#include "src/driver/pipeline.h"
#include "src/interp/explore.h"
#include "src/interp/interp.h"
#include "src/ir/printer.h"
#include "src/mutex/deadlock.h"
#include "src/opt/copyprop.h"
#include "src/opt/optimize.h"
#include "src/parser/parser.h"

namespace cssame {
namespace {

mutex::DeadlockReport analyzeDeadlocks(const char* src,
                                       DiagEngine* out = nullptr) {
  ir::Program p = parser::parseOrDie(src);
  driver::Compilation c = driver::analyze(p, {.warnings = false});
  DiagEngine diag;
  mutex::DeadlockReport r =
      mutex::detectDeadlocks(c.graph(), c.mhp(), c.mutexes(), diag);
  if (out != nullptr) *out = diag;
  return r;
}

TEST(Deadlock, AbbaDetected) {
  DiagEngine diag;
  mutex::DeadlockReport r = analyzeDeadlocks(R"(
    int a; lock L, M;
    cobegin {
      thread { lock(L); lock(M); a = 1; unlock(M); unlock(L); }
      thread { lock(M); lock(L); a = 2; unlock(L); unlock(M); }
    }
  )", &diag);
  EXPECT_EQ(r.abbaPairs, 1u);
  EXPECT_EQ(diag.countOf(DiagCode::PotentialDeadlock), 1u);
}

TEST(Deadlock, AbbaMatchesDynamicReality) {
  // Cross-check the static warning against the explorer: some schedule
  // of the flagged program really does deadlock.
  const char* src = R"(
    int a; lock L, M;
    cobegin {
      thread { lock(L); lock(M); a = 1; unlock(M); unlock(L); }
      thread { lock(M); lock(L); a = 2; unlock(L); unlock(M); }
    }
    print(a);
  )";
  EXPECT_EQ(analyzeDeadlocks(src).abbaPairs, 1u);
  ir::Program p = parser::parseOrDie(src);
  interp::ExploreResult all = interp::exploreAllSchedules(p);
  EXPECT_TRUE(all.anyDeadlock);
}

TEST(Deadlock, SameOrderIsSafe) {
  mutex::DeadlockReport r = analyzeDeadlocks(R"(
    int a; lock L, M;
    cobegin {
      thread { lock(L); lock(M); a = 1; unlock(M); unlock(L); }
      thread { lock(L); lock(M); a = 2; unlock(M); unlock(L); }
    }
  )");
  EXPECT_EQ(r.abbaPairs, 0u);
  EXPECT_EQ(r.orderCycles, 0u);
}

TEST(Deadlock, SequentialOppositeOrdersAreSafe) {
  // The two nestings never run concurrently (same thread).
  mutex::DeadlockReport r = analyzeDeadlocks(R"(
    int a; lock L, M;
    lock(L); lock(M); a = 1; unlock(M); unlock(L);
    lock(M); lock(L); a = 2; unlock(L); unlock(M);
  )");
  EXPECT_EQ(r.abbaPairs, 0u);
}

TEST(Deadlock, EventOrderingSuppressesFalsePositive) {
  // The opposite-order acquisitions are serialized by set/wait, so the
  // ABBA interleaving is impossible — the MHP refinement must see it.
  mutex::DeadlockReport r = analyzeDeadlocks(R"(
    int a; lock L, M; event e;
    cobegin {
      thread { lock(L); lock(M); a = 1; unlock(M); unlock(L); set(e); }
      thread { wait(e); lock(M); lock(L); a = 2; unlock(L); unlock(M); }
    }
  )");
  EXPECT_EQ(r.abbaPairs, 0u);
}

TEST(Deadlock, ThreeLockCycleReported) {
  DiagEngine diag;
  mutex::DeadlockReport r = analyzeDeadlocks(R"(
    int a; lock L, M, N;
    cobegin {
      thread { lock(L); lock(M); a = 1; unlock(M); unlock(L); }
      thread { lock(M); lock(N); a = 2; unlock(N); unlock(M); }
      thread { lock(N); lock(L); a = 3; unlock(L); unlock(N); }
    }
  )", &diag);
  EXPECT_EQ(r.abbaPairs, 0u);  // no direct 2-cycle
  EXPECT_GE(r.orderCycles, 1u);
  EXPECT_GE(diag.countOf(DiagCode::PotentialDeadlock), 1u);
}

TEST(Deadlock, ThreeLockCycleWarningCarriesWitnessCycle) {
  // The order-cycle warning names every edge of one witness cycle and
  // anchors at a real acquisition site, not a default location.
  DiagEngine diag;
  analyzeDeadlocks(R"(
    int a; lock L, M, N;
    cobegin {
      thread { lock(L); lock(M); a = 1; unlock(M); unlock(L); }
      thread { lock(M); lock(N); a = 2; unlock(N); unlock(M); }
      thread { lock(N); lock(L); a = 3; unlock(L); unlock(N); }
    }
  )", &diag);
  bool sawCycleWarning = false;
  for (const Diagnostic& d : diag.diagnostics()) {
    if (d.code != DiagCode::PotentialDeadlock || d.notes.empty()) continue;
    sawCycleWarning = true;
    EXPECT_TRUE(d.loc.valid()) << d.str();
    for (const DiagNote& n : d.notes) EXPECT_TRUE(n.loc.valid()) << d.str();
  }
  EXPECT_TRUE(sawCycleWarning);
}

TEST(Deadlock, ReacquiringHeldLockBlocksForever) {
  // Re-acquisition of a non-reentrant lock is not an ABBA shape, so the
  // order-cycle detector stays silent — csan's SelfDeadlock covers it —
  // but the explorer must confirm the hang is real.
  const char* src = R"(
    int a; lock L;
    cobegin {
      thread { lock(L); lock(L); a = 1; unlock(L); unlock(L); }
      thread { a = 2; }
    }
    print(a);
  )";
  mutex::DeadlockReport r = analyzeDeadlocks(src);
  EXPECT_EQ(r.abbaPairs, 0u);
  EXPECT_EQ(r.orderCycles, 0u);

  ir::Program p = parser::parseOrDie(src);
  interp::ExploreResult dyn = interp::exploreAllSchedules(p);
  EXPECT_TRUE(dyn.anyDeadlock);
}

TEST(Deadlock, SiblingArmOnlyOppositeOrders) {
  // The opposite acquisition orders live in sibling arms of a *nested*
  // cobegin (no top-level arm conflicts): still concurrent, still
  // reported.
  DiagEngine diag;
  mutex::DeadlockReport r = analyzeDeadlocks(R"(
    int a, b; lock L, M;
    cobegin {
      thread {
        cobegin {
          thread { lock(L); lock(M); a = 1; unlock(M); unlock(L); }
          thread { lock(M); lock(L); b = 1; unlock(L); unlock(M); }
        }
      }
      thread { a = a; }
    }
  )", &diag);
  EXPECT_EQ(r.abbaPairs, 1u);
  EXPECT_EQ(diag.countOf(DiagCode::PotentialDeadlock), 1u);
}

TEST(Deadlock, NestedArmSequentialOrdersStaySafe) {
  // Same nested shape but both orders in ONE inner arm, sequentially:
  // never concurrent, no warning.
  mutex::DeadlockReport r = analyzeDeadlocks(R"(
    int a; lock L, M;
    cobegin {
      thread {
        cobegin {
          thread {
            lock(L); lock(M); a = 1; unlock(M); unlock(L);
            lock(M); lock(L); a = 2; unlock(L); unlock(M);
          }
          thread { a = 3; }
        }
      }
      thread { a = a; }
    }
  )");
  EXPECT_EQ(r.abbaPairs, 0u);
  EXPECT_EQ(r.orderCycles, 0u);
}

TEST(CopyProp, SingleDefCopyPropagates) {
  ir::Program p = parser::parseOrDie(R"(
    int rate, t, out;
    rate = f(0);
    t = rate;
    out = t + t;
    print(out);
  )");
  driver::Compilation c = driver::analyze(p, {.warnings = false});
  opt::CopyPropStats stats = opt::propagateCopies(c);
  EXPECT_EQ(stats.usesRewritten, 2u);
  const std::string text = ir::printProgram(p);
  EXPECT_NE(text.find("out = rate + rate"), std::string::npos) << text;
}

TEST(CopyProp, MultipleDefsBlock) {
  ir::Program p = parser::parseOrDie(R"(
    int y, t, out, c;
    y = 1;
    if (c > 0) { y = 2; }
    t = y;
    out = t;
    print(out);
  )");
  driver::Compilation c = driver::analyze(p, {.warnings = false});
  opt::CopyPropStats stats = opt::propagateCopies(c);
  // The use of t must NOT become y (y has two definitions); the use of
  // out may legitimately become t (out is a copy of the single-def t).
  const std::string text = ir::printProgram(p);
  EXPECT_NE(text.find("out = t;"), std::string::npos) << text;
  EXPECT_NE(text.find("print(t)"), std::string::npos) << text;
  EXPECT_EQ(stats.usesRewritten, 1u);
}

TEST(CopyProp, ConcurrentSourceBlocks) {
  ir::Program p = parser::parseOrDie(R"(
    int y, t, out;
    cobegin {
      thread { t = y; out = t; }
      thread { y = 5; }
    }
    print(out);
  )");
  driver::Compilation c = driver::analyze(p, {.warnings = false});
  opt::CopyPropStats stats = opt::propagateCopies(c);
  // y has a concurrent definition, and the use of t is fed through the
  // copy but y's value may change between copy and use.
  EXPECT_EQ(stats.usesRewritten, 0u);
}

TEST(CopyProp, PiGuardedUseBlocks) {
  ir::Program p = parser::parseOrDie(R"(
    int x, y, out;
    y = f(0);
    cobegin {
      thread { x = y; out = x; }
      thread { x = 3; }
    }
    print(out);
  )");
  driver::Compilation c = driver::analyze(p, {.warnings = false});
  opt::CopyPropStats stats = opt::propagateCopies(c);
  // The use of x is π-guarded (concurrent def x = 3): must not rewrite.
  EXPECT_EQ(stats.usesRewritten, 0u);
  for (const interp::RunResult& r : interp::runManySeeds(p, 10))
    ASSERT_TRUE(r.completed);
}

TEST(CopyProp, SemanticsPreservedInPipeline) {
  const char* src = R"(
    int rate, sum; lock L;
    rate = f(2);
    cobegin {
      thread { int t; t = rate; lock(L); sum = sum + t; unlock(L); }
      thread { int u; u = rate; lock(L); sum = sum + u * 2; unlock(L); }
    }
    print(sum);
  )";
  ir::Program reference = parser::parseOrDie(src);
  const std::vector<long long> expected =
      interp::run(reference, {.seed = 1}).output;

  ir::Program p = parser::parseOrDie(src);
  opt::OptimizeReport report = opt::optimizeProgram(p);
  EXPECT_GT(report.copyProp.usesRewritten, 0u);
  for (const interp::RunResult& r : interp::runManySeeds(p, 10)) {
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.output, expected);
  }
}

}  // namespace
}  // namespace cssame
