// Unit tests for parallel reaching definitions (Algorithm A.4): FUD chain
// traversal through φ and π terms, cycle handling, and def-use links.
#include <gtest/gtest.h>

#include "src/cssa/reaching.h"
#include "src/driver/pipeline.h"
#include "src/parser/parser.h"

namespace cssame::cssa {
namespace {

struct Fixture {
  ir::Program prog;
  driver::Compilation comp;
  ReachingInfo reach;

  explicit Fixture(const char* src, bool cssame = true)
      : prog(parser::parseOrDie(src)),
        comp(driver::analyze(prog,
                             {.enableCssame = cssame, .warnings = false})),
        reach(computeParallelReachingDefs(comp.graph(), comp.ssa())) {}

  /// First VarRef of `var` inside the statement tagged by constant `tag`.
  const ir::Expr* useIn(long long tag, const std::string& var) {
    const ir::Expr* out = nullptr;
    ir::forEachStmt(prog.body, [&](const ir::Stmt& s) {
      if (!s.expr) return;
      bool tagged = false;
      ir::forEachExpr(*s.expr, [&](const ir::Expr& e) {
        if (e.kind == ir::ExprKind::IntConst && e.intValue == tag)
          tagged = true;
      });
      if (!tagged) return;
      ir::forEachExpr(*s.expr, [&](const ir::Expr& e) {
        if (e.kind == ir::ExprKind::VarRef && out == nullptr &&
            prog.symbols.nameOf(e.var) == var)
          out = &e;
      });
    });
    return out;
  }

  std::vector<long long> reachingConstants(const ir::Expr* use) {
    std::vector<long long> vals;
    for (SsaNameId d : reach.defs(use)) {
      const ssa::Definition& def = comp.ssa().def(d);
      if (def.kind == ssa::DefKind::Assign &&
          def.stmt->expr->kind == ir::ExprKind::IntConst)
        vals.push_back(def.stmt->expr->intValue);
      if (def.kind == ssa::DefKind::Entry) vals.push_back(-999);
    }
    std::sort(vals.begin(), vals.end());
    return vals;
  }
};

TEST(Reaching, StraightLine) {
  Fixture f("int a, b; a = 1; b = a + 100;");
  const ir::Expr* u = f.useIn(100, "a");
  ASSERT_NE(u, nullptr);
  EXPECT_EQ(f.reachingConstants(u), (std::vector<long long>{1}));
}

TEST(Reaching, ThroughPhi) {
  Fixture f(R"(
    int a, b, c;
    if (c > 0) { a = 1; } else { a = 2; }
    b = a + 100;
  )");
  const ir::Expr* u = f.useIn(100, "a");
  EXPECT_EQ(f.reachingConstants(u), (std::vector<long long>{1, 2}));
}

TEST(Reaching, ThroughLoopPhiTerminates) {
  Fixture f(R"(
    int i, b;
    i = 1;
    while (i < 5) { i = 2; }
    b = i + 100;
  )");
  const ir::Expr* u = f.useIn(100, "i");
  EXPECT_EQ(f.reachingConstants(u), (std::vector<long long>{1, 2}));
}

TEST(Reaching, ThroughPiConflictArgs) {
  Fixture f(R"(
    int a, b;
    a = 1;
    cobegin {
      thread { b = a + 100; }
      thread { a = 2; }
    }
  )");
  const ir::Expr* u = f.useIn(100, "a");
  EXPECT_EQ(f.reachingConstants(u), (std::vector<long long>{1, 2}));
}

TEST(Reaching, EntryDefinition) {
  Fixture f("int a, b; b = a + 100;");
  const ir::Expr* u = f.useIn(100, "a");
  EXPECT_EQ(f.reachingConstants(u), (std::vector<long long>{-999}));
}

TEST(Reaching, CssameReducesReachingSet) {
  const char* src = R"(
    int a, b; lock L;
    cobegin {
      thread { lock(L); a = 1; b = a + 100; unlock(L); }
      thread { lock(L); a = 2; unlock(L); }
    }
  )";
  Fixture withCssame(src, true);
  Fixture plain(src, false);
  const ir::Expr* u1 = withCssame.useIn(100, "a");
  const ir::Expr* u2 = plain.useIn(100, "a");
  EXPECT_EQ(withCssame.reachingConstants(u1), (std::vector<long long>{1}));
  EXPECT_EQ(plain.reachingConstants(u2), (std::vector<long long>{1, 2}));
}

TEST(Reaching, DefUseLinksAreInverse) {
  Fixture f(R"(
    int a, b, c;
    a = 1;
    if (c > 0) { a = 2; }
    b = a + 100;
    c = a + 200;
  )");
  for (const auto& [use, defs] : f.reach.defsOf) {
    for (SsaNameId d : defs) {
      const auto& uses = f.reach.usesOf.at(d);
      EXPECT_NE(std::find(uses.begin(), uses.end(), use), uses.end());
    }
  }
}

TEST(Reaching, MultipleUsesInOneStatement) {
  Fixture f("int a, b; a = 1; b = a + a + 100;");
  // Each VarRef gets its own entry.
  std::size_t usesOfA = 0;
  for (const auto& [use, defs] : f.reach.defsOf)
    if (f.prog.symbols.nameOf(use->var) == "a") ++usesOfA;
  EXPECT_EQ(usesOfA, 2u);
}

TEST(Reaching, SelfReferenceInLoop) {
  // i = i + 1 inside the loop: the rhs use reaches both the init and the
  // loop's own def — the marked() memoization must stop the cycle.
  Fixture f(R"(
    int i;
    i = 0;
    while (i < 3) { i = i + 100; }
  )");
  const ir::Expr* u = f.useIn(100, "i");
  ASSERT_NE(u, nullptr);
  const auto& defs = f.reach.defs(u);
  EXPECT_EQ(defs.size(), 2u);  // i = 0 and i = i + 100
}

}  // namespace
}  // namespace cssame::cssa
