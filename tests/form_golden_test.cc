// Golden test: the exact CSSAME form of the paper's Figure 2 program, as
// rendered by the form printer. This pins the whole front half of the
// pipeline — block formation, φ placement, coend pruning, π placement and
// the CSSAME rewriting — to a stable, reviewable artifact mirroring the
// paper's Figure 3b.
#include <gtest/gtest.h>

#include "src/cssa/form_printer.h"
#include "src/driver/pipeline.h"
#include "src/parser/parser.h"
#include "src/workload/paper_programs.h"

namespace cssame {
namespace {

TEST(FormGolden, Figure2Cssame) {
  ir::Program prog = parser::parseOrDie(workload::figure2Source());
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  const std::string form = cssa::printForm(c.graph(), c.ssa());

  // Version numbers: 0 is the entry value; φ at coend and the if-join
  // were created during placement (before renaming), hence their low
  // numbers. Compare with the paper's Figure 3b: π on b survives with
  // args (b before the cobegin, b from T0); every π on a is gone; both
  // φ terms remain.
  const char* expected = R"(#0 entry:
#1 exit:
#2 block [2 stmts]:
  a3 = 0
  b2 = 0
#3 cobegin:
#4 coend:
  a1 = phi(a2, a6)
#5 block [0 stmts] [depth 1 thread 0]:
#6 lock(L) [depth 1 thread 0]:
#7 block [2 stmts, branch] [depth 1 thread 0]:
  a4 = 5
  b3 = a4 + 3
  branch b3 > 4
#8 block [1 stmts] [depth 1 thread 0]:
  a5 = a4 + b3
#9 block [1 stmts] [depth 1 thread 0]:
  a2 = phi(a4, a5)
  x2 = a2
#10 unlock(L) [depth 1 thread 0]:
#11 block [0 stmts] [depth 1 thread 1]:
#12 lock(L) [depth 1 thread 1]:
#13 block [2 stmts] [depth 1 thread 1]:
  b4 = pi(b2, b3)
  a6 = b4 + 6
  y2 = a6
#14 unlock(L) [depth 1 thread 1]:
#15 block [2 stmts]:
  print(x2)
  print(y2)
)";
  EXPECT_EQ(form, expected);
}

TEST(FormGolden, MatchesFigure3bStructure) {
  // The same facts, asserted structurally (robust to renumbering):
  //   - T0 contains NO π terms at all,
  //   - T1 contains exactly one π on b with args (b_init, b_T0),
  //   - the if-join φ merges T0's two defs of a,
  //   - the coend φ merges T0's and T1's final a.
  ir::Program prog = parser::parseOrDie(workload::figure2Source());
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  const std::string form = cssa::printForm(c.graph(), c.ssa());
  EXPECT_EQ(form.find("pi("), form.rfind("pi(")) << form;  // exactly one π
  EXPECT_NE(form.find("= pi(b"), std::string::npos);
  // Two φs, one on each side of the coend.
  std::size_t phis = 0, pos = 0;
  while ((pos = form.find("= phi(", pos)) != std::string::npos) {
    ++phis;
    ++pos;
  }
  EXPECT_EQ(phis, 2u);
}

}  // namespace
}  // namespace cssame
