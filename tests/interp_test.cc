// Unit tests for the interleaving interpreter: sequential semantics,
// control flow, lock blocking and accounting, events, deadlock and fuel.
#include <gtest/gtest.h>

#include "src/interp/interp.h"
#include "src/parser/parser.h"

namespace cssame::interp {
namespace {

RunResult runSrc(const char* src, std::uint64_t seed = 1,
                 std::uint64_t maxSteps = 1u << 20) {
  ir::Program prog = parser::parseOrDie(src);
  return run(prog, {seed, maxSteps});
}

TEST(Interp, Arithmetic) {
  RunResult r = runSrc(R"(
    int a, b;
    a = 6;
    b = a * 7 - 2;
    print(b);
    print(b % 5);
    print(b / 4);
    print(-b);
  )");
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.output, (std::vector<long long>{40, 0, 10, -40}));
}

TEST(Interp, VariablesStartAtZero) {
  RunResult r = runSrc("int a; print(a);");
  EXPECT_EQ(r.output, (std::vector<long long>{0}));
}

TEST(Interp, DivisionByZeroYieldsZero) {
  RunResult r = runSrc("int a; print(7 / a); print(7 % a);");
  EXPECT_EQ(r.output, (std::vector<long long>{0, 0}));
}

TEST(Interp, IfElse) {
  RunResult r = runSrc(R"(
    int a;
    a = 5;
    if (a > 3) { print(1); } else { print(2); }
    if (a > 9) { print(3); } else { print(4); }
    if (a == 5) { print(5); }
    if (a != 5) { print(6); }
  )");
  EXPECT_EQ(r.output, (std::vector<long long>{1, 4, 5}));
}

TEST(Interp, WhileLoop) {
  RunResult r = runSrc(R"(
    int i, s;
    i = 1;
    while (i <= 5) { s = s + i; i = i + 1; }
    print(s);
  )");
  EXPECT_EQ(r.output, (std::vector<long long>{15}));
}

TEST(Interp, NestedLoops) {
  RunResult r = runSrc(R"(
    int i, j, c;
    i = 0;
    while (i < 3) {
      j = 0;
      while (j < 4) { c = c + 1; j = j + 1; }
      i = i + 1;
    }
    print(c);
  )");
  EXPECT_EQ(r.output, (std::vector<long long>{12}));
}

TEST(Interp, LogicalOperators) {
  RunResult r = runSrc(R"(
    int a; a = 3;
    print(a > 1 && a < 5);
    print(a > 4 || a == 3);
    print(!a);
    print(!(a - 3));
  )");
  EXPECT_EQ(r.output, (std::vector<long long>{1, 1, 0, 1}));
}

TEST(Interp, ExternalCallsAreDeterministic) {
  RunResult a = runSrc("print(f(1)); print(f(1)); print(f(2));", 1);
  RunResult b = runSrc("print(f(1)); print(f(1)); print(f(2));", 99);
  EXPECT_EQ(a.output[0], a.output[1]);
  EXPECT_NE(a.output[0], a.output[2]);
  EXPECT_EQ(a.output, b.output);  // schedule-independent
}

TEST(Interp, CobeginJoinsBeforeContinuing) {
  RunResult r = runSrc(R"(
    int a, b;
    cobegin {
      thread { a = 1; }
      thread { b = 2; }
    }
    print(a + b);
  )");
  EXPECT_EQ(r.output, (std::vector<long long>{3}));
}

TEST(Interp, LocksMakeUpdatesAtomic) {
  // Without the lock the += could lose updates under some interleaving;
  // with it, the total is always exact.
  const char* src = R"(
    int a; lock L;
    cobegin {
      thread { int i; i = 0; while (i < 10) { lock(L); a = a + 1; unlock(L); i = i + 1; } }
      thread { int j; j = 0; while (j < 10) { lock(L); a = a + 1; unlock(L); j = j + 1; } }
    }
    print(a);
  )";
  ir::Program prog = parser::parseOrDie(src);
  for (const RunResult& r : runManySeeds(prog, 20)) {
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.output, (std::vector<long long>{20}));
  }
}

TEST(Interp, RacyIncrementsCanLoseUpdates) {
  // Statement-granular interleaving of a = a + 1 is atomic per
  // statement in our model, so single-statement increments don't lose
  // updates — but a read/modify split across statements does.
  const char* src = R"(
    int a;
    cobegin {
      thread { int t; t = a; t = t + 1; a = t; }
      thread { int u; u = a; u = u + 1; a = u; }
    }
    print(a);
  )";
  ir::Program prog = parser::parseOrDie(src);
  bool sawOne = false, sawTwo = false;
  for (const RunResult& r : runManySeeds(prog, 40)) {
    ASSERT_EQ(r.output.size(), 1u);
    sawOne |= r.output[0] == 1;
    sawTwo |= r.output[0] == 2;
  }
  EXPECT_TRUE(sawTwo);
  EXPECT_TRUE(sawOne);  // the lost-update interleaving must be reachable
}

TEST(Interp, LockStatsAccounting) {
  RunResult r = runSrc(R"(
    int a; lock L;
    lock(L);
    a = 1;
    a = 2;
    unlock(L);
  )");
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.lockStats.size(), 1u);
  const LockStats& ls = r.lockStats.begin()->second;
  EXPECT_EQ(ls.acquisitions, 1u);
  EXPECT_EQ(ls.contendedAcquires, 0u);
  // Holding across a=1, a=2, unlock: 3 accounted steps.
  EXPECT_EQ(ls.holdSteps, 3u);
}

TEST(Interp, ContentionCounted) {
  ir::Program prog = parser::parseOrDie(R"(
    int a; lock L;
    cobegin {
      thread { lock(L); a = a + 1; unlock(L); }
      thread { lock(L); a = a + 1; unlock(L); }
    }
  )");
  bool sawContention = false;
  for (const RunResult& r : runManySeeds(prog, 30)) {
    for (const auto& [sym, ls] : r.lockStats)
      sawContention |= ls.contendedAcquires > 0;
  }
  EXPECT_TRUE(sawContention);
}

TEST(Interp, SelfDeadlockDetected) {
  RunResult r = runSrc(R"(
    lock L;
    lock(L);
    lock(L);
  )");
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(r.deadlocked);
}

TEST(Interp, AbbaDeadlockReachable) {
  ir::Program prog = parser::parseOrDie(R"(
    int a; lock L, M;
    cobegin {
      thread { lock(L); a = a + 1; lock(M); unlock(M); unlock(L); }
      thread { lock(M); a = a + 1; lock(L); unlock(L); unlock(M); }
    }
  )");
  bool sawDeadlock = false, sawCompletion = false;
  for (const RunResult& r : runManySeeds(prog, 50)) {
    sawDeadlock |= r.deadlocked;
    sawCompletion |= r.completed;
  }
  EXPECT_TRUE(sawDeadlock);
  EXPECT_TRUE(sawCompletion);
}

TEST(Interp, UnlockWithoutHoldingIsError) {
  RunResult r = runSrc("lock L; unlock(L);");
  EXPECT_TRUE(r.lockError);
}

TEST(Interp, EventOrdering) {
  ir::Program prog = parser::parseOrDie(R"(
    int a; event go;
    cobegin {
      thread { a = 41; set(go); }
      thread { wait(go); print(a + 1); }
    }
  )");
  for (const RunResult& r : runManySeeds(prog, 20)) {
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.output, (std::vector<long long>{42}));
  }
}

TEST(Interp, WaitWithoutSetDeadlocks) {
  RunResult r = runSrc("event e; wait(e);");
  EXPECT_TRUE(r.deadlocked);
}

TEST(Interp, SpinLoopExhaustsFuel) {
  RunResult r = runSrc("int a; while (a == 0) { } print(1);", 1, 1000);
  EXPECT_FALSE(r.completed);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_EQ(r.steps, 1000u);
}

TEST(Interp, SpinWaitOnOtherThreadEventuallyPasses) {
  ir::Program prog = parser::parseOrDie(R"(
    int flag, v;
    cobegin {
      thread { v = 7; flag = 1; }
      thread { while (flag == 0) { } print(v); }
    }
  )");
  // The random scheduler always eventually runs thread 0.
  for (const RunResult& r : runManySeeds(prog, 10)) {
    ASSERT_TRUE(r.completed) << "spin should terminate";
    // v=7 is set before flag; but the spin-reader may read v... flag=1
    // happens after v=7 in program order, so print sees 7.
    EXPECT_EQ(r.output, (std::vector<long long>{7}));
  }
}

TEST(Interp, SameSeedIsDeterministic) {
  ir::Program prog = parser::parseOrDie(R"(
    int a;
    cobegin {
      thread { a = 1; print(a); }
      thread { a = 2; print(a); }
    }
  )");
  RunResult r1 = run(prog, {.seed = 7});
  RunResult r2 = run(prog, {.seed = 7});
  EXPECT_EQ(r1.output, r2.output);
  EXPECT_EQ(r1.steps, r2.steps);
}

TEST(Interp, EmptyThreadBodies) {
  RunResult r = runSrc(R"(
    cobegin {
      thread { }
      thread { print(1); }
    }
    print(2);
  )");
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.output, (std::vector<long long>{1, 2}));
}

TEST(Interp, NestedCobegin) {
  RunResult r = runSrc(R"(
    int a, b, c;
    cobegin {
      thread {
        cobegin {
          thread { a = 1; }
          thread { b = 2; }
        }
        c = a + b;
      }
      thread { print(0); }
    }
    print(c);
  )");
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.output.back(), 3);
}

}  // namespace
}  // namespace cssame::interp
