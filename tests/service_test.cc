// End-to-end tests for the analysis service: the JSON layer, the wire
// framing, the request router, the two-tier content-addressed cache and
// the Unix-socket transport.
//
// The load-bearing properties:
//   - hostility never crashes the daemon: malformed JSON, unknown
//     methods, framing violations and oversized payloads all degrade
//     into structured error envelopes (or a final error + disconnect for
//     unrecoverable framing),
//   - every cache tier answers byte-identically to a cold computation —
//     the service calls the same driver::runSource/runCompiled as the
//     cssamec CLI, so a cached response IS the standalone output,
//   - the disk tier survives restarts, rejects corruption and other
//     builds' artifacts, and a SIGKILLed daemon leaves a cache the next
//     daemon starts cleanly from (the tmp+rename write protocol).
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <thread>

#include "src/driver/runner.h"
#include "src/service/json.h"
#include "src/service/protocol.h"
#include "src/service/server.h"
#include "src/support/io.h"
#include "src/support/version.h"

namespace cssame {
namespace {

namespace fs = std::filesystem;

constexpr const char* kSource = R"(
  int x = 0, y = 0;
  lock L;
  cobegin {
    thread T0 { lock(L); x = x + 1; unlock(L); }
    thread T1 { lock(L); x = x * 2; unlock(L); y = 5; }
  }
  print(x); print(y);
)";

constexpr const char* kRacySource = R"(
  int a = 0;
  cobegin {
    thread T0 { a = 1; }
    thread T1 { a = 2; }
  }
  print(a);
)";

/// A unique, empty scratch directory; removed on destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("cssame_svc_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  fs::path path;
};

std::string makeRequest(const std::string& method, const std::string& source,
                        service::Json options = service::Json::object(),
                        int id = 1) {
  service::Json req = service::Json::object();
  req.set("id", id)
      .set("method", method)
      .set("file", "test.cp")
      .set("source", source)
      .set("options", std::move(options));
  return req.write();
}

service::Json parseOk(const std::string& payload) {
  Expected<service::Json> j = service::parseJson(payload);
  EXPECT_TRUE(j.ok()) << payload;
  return j.ok() ? *j : service::Json();
}

/// A pid guaranteed dead and reaped: sweepTmp() skips tmp files whose
/// embedded writer pid is alive, so sweep tests must name a writer that
/// verifiably isn't. Fork a trivial child and wait for it — its pid is
/// unused until the kernel wraps around, far beyond the test's lifetime.
pid_t deadPid() {
  const pid_t pid = ::fork();
  if (pid == 0) ::_exit(0);
  int status = 0;
  ::waitpid(pid, &status, 0);
  return pid;
}

/// Sends one request payload over an established connection and returns
/// the parsed response envelope.
service::Json roundTrip(support::FdStream& conn, const std::string& payload) {
  EXPECT_TRUE(
      service::writeFrame(conn, payload, service::kDefaultMaxPayload).ok());
  std::string response;
  EXPECT_EQ(service::readFrame(conn, response, service::kDefaultMaxPayload),
            service::FrameStatus::Ok);
  return parseOk(response);
}

// ---------------------------------------------------------------------------
// JSON

TEST(ServiceJson, WriteParseRoundTrip) {
  service::Json inner = service::Json::array();
  inner.push(1).push(-2).push(true).push(service::Json());
  service::Json obj = service::Json::object();
  obj.set("s", "he\"llo\n\tworld").set("n", std::int64_t{1} << 60)
      .set("d", 1.5).set("a", std::move(inner));
  const std::string text = obj.write();
  service::Json back = parseOk(text);
  EXPECT_EQ(back.write(), text);
  EXPECT_EQ(back.getString("s", ""), "he\"llo\n\tworld");
  EXPECT_EQ(back.getInt("n", 0), std::int64_t{1} << 60);
  EXPECT_EQ(back.get("a").items().size(), 4u);
}

TEST(ServiceJson, UnicodeEscapesBecomeUtf8) {
  service::Json j = parseOk(R"({"k":"\u0041\u00e9"})");
  EXPECT_EQ(j.getString("k", ""), "A\xc3\xa9");
}

TEST(ServiceJson, MalformedInputsFailStructurally) {
  for (const char* bad : {"{", "[1,]", "{\"a\":}", "1 2", "tru", "\"\\q\"",
                          "{\"a\" 1}", ""}) {
    Expected<service::Json> r = service::parseJson(bad);
    EXPECT_FALSE(r.ok()) << bad;
  }
}

TEST(ServiceJson, DepthBombIsRejectedNotOverflowed) {
  std::string bomb(500, '[');
  bomb += std::string(500, ']');
  Expected<service::Json> r = service::parseJson(bomb);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.fault().message.find("nesting"), std::string::npos);
}

TEST(ServiceJson, LastDuplicateKeyWins) {
  service::Json j = parseOk(R"({"a":1,"a":2})");
  EXPECT_EQ(j.getInt("a", 0), 2);
}

// ---------------------------------------------------------------------------
// Framing

TEST(ServiceProtocol, FrameRoundTripOverSocketpair) {
  Expected<std::pair<support::FdStream, support::FdStream>> pair =
      support::streamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = *pair;
  const std::string payload = "{\"hello\":\"world\"}";
  ASSERT_TRUE(service::writeFrame(a, payload, 1024).ok());
  std::string got;
  EXPECT_EQ(service::readFrame(b, got, 1024), service::FrameStatus::Ok);
  EXPECT_EQ(got, payload);
}

TEST(ServiceProtocol, CleanEofAfterPeerCloses) {
  Expected<std::pair<support::FdStream, support::FdStream>> pair =
      support::streamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = *pair;
  a.close();
  std::string got;
  EXPECT_EQ(service::readFrame(b, got, 1024), service::FrameStatus::Eof);
}

TEST(ServiceProtocol, BadMagicIsRejected) {
  Expected<std::pair<support::FdStream, support::FdStream>> pair =
      support::streamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = *pair;
  const char junk[8] = {'n', 'o', 'p', 'e', 1, 0, 0, 0};
  ASSERT_TRUE(a.writeAll(junk, sizeof junk).ok());
  std::string got;
  EXPECT_EQ(service::readFrame(b, got, 1024), service::FrameStatus::BadMagic);
}

TEST(ServiceProtocol, OversizedLengthIsRejectedBeforeAllocation) {
  Expected<std::pair<support::FdStream, support::FdStream>> pair =
      support::streamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = *pair;
  // Magic + a 256 MiB length; the reader must refuse without resizing.
  const unsigned char header[8] = {'c', 's', 'a', 'J', 0, 0, 0, 0x10};
  ASSERT_TRUE(a.writeAll(header, sizeof header).ok());
  std::string got;
  EXPECT_EQ(service::readFrame(b, got, 1 << 20),
            service::FrameStatus::TooLarge);
}

TEST(ServiceProtocol, TruncatedPayloadIsAnError) {
  Expected<std::pair<support::FdStream, support::FdStream>> pair =
      support::streamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = *pair;
  const unsigned char header[8] = {'c', 's', 'a', 'J', 100, 0, 0, 0};
  ASSERT_TRUE(a.writeAll(header, sizeof header).ok());
  ASSERT_TRUE(a.writeAll("only this", 9).ok());
  a.close();  // EOF 91 bytes early
  std::string got;
  EXPECT_EQ(service::readFrame(b, got, 1024),
            service::FrameStatus::Truncated);
}

TEST(ServiceProtocol, WriterEnforcesTheCapToo) {
  Expected<std::pair<support::FdStream, support::FdStream>> pair =
      support::streamPair();
  ASSERT_TRUE(pair.ok());
  EXPECT_FALSE(
      service::writeFrame(pair->first, std::string(2048, 'x'), 1024).ok());
}

TEST(ServiceProtocol, ConnectToMissingSocketFailsWithClearFault) {
  // The client-side error a user sees first: no daemon behind the path.
  // The fault must carry the path so the message is actionable.
  ScratchDir dir("nosock");
  const std::string sock = (dir.path / "no-daemon-here.sock").string();
  Expected<support::FdStream> conn = support::connectUnix(sock);
  ASSERT_FALSE(conn.ok());
  EXPECT_NE(conn.fault().message.find("no-daemon-here"), std::string::npos);
}

TEST(ServiceProtocol, DeadlineReadDeliversPromptFrames) {
  Expected<std::pair<support::FdStream, support::FdStream>> pair =
      support::streamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = *pair;
  const std::string payload = "{\"prompt\":true}";
  ASSERT_TRUE(service::writeFrameDeadline(a, payload, 1024,
                                          support::Deadline::in(5000))
                  .ok());
  std::string got;
  EXPECT_EQ(service::readFrameDeadline(b, got, 1024,
                                       support::Deadline::in(5000)),
            service::FrameStatus::Ok);
  EXPECT_EQ(got, payload);
}

TEST(ServiceProtocol, DeadlineReadTimesOutOnStalledPeer) {
  Expected<std::pair<support::FdStream, support::FdStream>> pair =
      support::streamPair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = *pair;
  // Half a header, then silence: mid-frame stall, not EOF.
  ASSERT_TRUE(a.writeAll("csaJ", 4).ok());
  std::string got;
  EXPECT_EQ(service::readFrameDeadline(b, got, 1024,
                                       support::Deadline::in(50)),
            service::FrameStatus::TimedOut);
}

TEST(ServiceProtocol, DeadlineWriteTimesOutWhenPeerStopsReading) {
  Expected<std::pair<support::FdStream, support::FdStream>> pair =
      support::streamPair();
  ASSERT_TRUE(pair.ok());
  // Nobody drains the other end: a payload far beyond the socket buffer
  // must surface as a deadline fault, not a parked thread.
  const std::size_t big = 32u << 20;
  Status s = service::writeFrameDeadline(pair->first,
                                         std::string(big, 'x'), big + 1,
                                         support::Deadline::in(50));
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(support::isDeadlineFault(s.fault()));
}

// ---------------------------------------------------------------------------
// Router: hostile inputs become structured errors, never crashes

TEST(ServiceServer, MalformedJsonYieldsStructuredError) {
  service::Server server({});
  service::Json resp = parseOk(server.handlePayload("{this is not json"));
  EXPECT_FALSE(resp.getBool("ok", true));
  EXPECT_EQ(resp.get("error").getString("kind", ""), "parse-error");
}

TEST(ServiceServer, UnknownMethodYieldsStructuredError) {
  service::Server server({});
  service::Json resp =
      parseOk(server.handlePayload(makeRequest("frobnicate", kSource)));
  EXPECT_FALSE(resp.getBool("ok", true));
  EXPECT_EQ(resp.get("error").getString("kind", ""), "unknown-method");
  EXPECT_EQ(resp.getInt("id", -1), 1);  // id echoed even on errors
}

TEST(ServiceServer, MissingSourceYieldsStructuredError) {
  service::Server server({});
  service::Json req = service::Json::object();
  req.set("id", 7).set("method", "analyze");
  service::Json resp = parseOk(server.handlePayload(req.write()));
  EXPECT_FALSE(resp.getBool("ok", true));
  EXPECT_EQ(resp.get("error").getString("kind", ""), "invalid-request");
  EXPECT_EQ(resp.getInt("id", -1), 7);
}

TEST(ServiceServer, NonObjectRequestYieldsStructuredError) {
  service::Server server({});
  for (const char* req : {"[1,2,3]", "42", "\"analyze\"", "null"}) {
    service::Json resp = parseOk(server.handlePayload(req));
    EXPECT_FALSE(resp.getBool("ok", true)) << req;
  }
}

TEST(ServiceServer, UnparseableSourceIsAnOkEnvelopeWithExitCode) {
  // A source that fails to parse is a *successful* request whose result
  // carries the diagnostics and exit code 1, exactly like the CLI.
  service::Server server({});
  service::Json resp =
      parseOk(server.handlePayload(makeRequest("analyze", "int int int")));
  ASSERT_TRUE(resp.getBool("ok", false));
  EXPECT_EQ(resp.get("result").getInt("code", 0), 1);
  EXPECT_NE(resp.get("result").getString("err", "").find("error"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Byte-identity with the standalone runner, across methods and tiers

driver::RunOptions optionsFor(const service::Json& options) {
  driver::RunOptions o;
  o.dumpForm = options.getBool("dumpForm", false);
  o.doCsan = options.getBool("csan", false);
  o.doVrange = options.getBool("vrange", false);
  o.doRaces = options.getBool("races", false);
  o.doRun = options.getBool("run", false);
  o.doOpt = options.getBool("opt", false);
  o.doTso = options.getBool("tso", false);
  (void)support::parseMemoryModel(options.getString("memoryModel", "sc"),
                                  o.memoryModel);
  o.seed = static_cast<std::uint64_t>(options.getInt("seed", 1));
  return o;
}

TEST(ServiceServer, ResponsesMatchStandaloneRunnerBytewise) {
  service::Server server({});
  std::vector<service::Json> optionSets;
  optionSets.push_back(service::Json::object());  // plain analyze
  optionSets.push_back(service::Json::object().set("dumpForm", true));
  optionSets.push_back(service::Json::object().set("csan", true));
  optionSets.push_back(
      service::Json::object().set("csan", true).set("vrange", true));
  optionSets.push_back(service::Json::object().set("races", true));
  optionSets.push_back(
      service::Json::object().set("run", true).set("seed", 3));
  optionSets.push_back(service::Json::object().set("opt", true));
  optionSets.push_back(service::Json::object().set("tso", true));
  optionSets.push_back(service::Json::object()
                           .set("run", true)
                           .set("seed", 3)
                           .set("memoryModel", "tso"));

  for (const char* source : {kSource, kRacySource}) {
    for (const service::Json& options : optionSets) {
      const driver::RunOutput expect =
          driver::runSource(source, "test.cp", optionsFor(options));
      service::Json copy = options;  // makeRequest consumes
      service::Json resp = parseOk(
          server.handlePayload(makeRequest("analyze", source, copy)));
      ASSERT_TRUE(resp.getBool("ok", false)) << options.write();
      const service::Json& result = resp.get("result");
      EXPECT_EQ(result.getString("out", "?"), expect.out) << options.write();
      EXPECT_EQ(result.getString("err", "?"), expect.err) << options.write();
      EXPECT_EQ(result.getInt("code", -1), expect.code) << options.write();
    }
  }
}

TEST(ServiceServer, CsanAndVrangeMethodsForceTheirAnalyses) {
  service::Server server({});
  driver::RunOptions o;
  o.doCsan = true;
  const driver::RunOutput expect = driver::runSource(kSource, "test.cp", o);
  service::Json resp =
      parseOk(server.handlePayload(makeRequest("csan", kSource)));
  ASSERT_TRUE(resp.getBool("ok", false));
  EXPECT_EQ(resp.get("result").getString("err", "?"), expect.err);

  driver::RunOptions v;
  v.doVrange = true;
  const driver::RunOutput vexpect = driver::runSource(kSource, "test.cp", v);
  service::Json vresp =
      parseOk(server.handlePayload(makeRequest("vrange", kSource)));
  ASSERT_TRUE(vresp.getBool("ok", false));
  EXPECT_EQ(vresp.get("result").getString("err", "?"), vexpect.err);
}

// ---------------------------------------------------------------------------
// Cache tiers

TEST(ServiceCache, RepeatRequestHitsMemoryTier) {
  service::Server server({});
  service::Json first =
      parseOk(server.handlePayload(makeRequest("analyze", kSource)));
  service::Json second =
      parseOk(server.handlePayload(makeRequest("analyze", kSource)));
  EXPECT_EQ(first.getString("cached", "?"), "miss");
  EXPECT_EQ(second.getString("cached", "?"), "memory");
  EXPECT_EQ(second.get("result").write(), first.get("result").write());
  EXPECT_EQ(server.cache().counters().responseHits.value(), 1u);
  EXPECT_EQ(server.cache().counters().misses.value(), 1u);
}

TEST(ServiceCache, MemoryModelKeysDiverge) {
  // An SC-cached response must never be served to a TSO request (or vice
  // versa): the memory model is part of RunOptions::cacheKey(), so the
  // request fingerprints differ even for identical source bytes.
  driver::RunOptions sc, tso;
  tso.memoryModel = support::MemoryModel::TSO;
  EXPECT_NE(sc.cacheKey(), tso.cacheKey());

  service::Server server({});
  service::Json runSc = service::Json::object().set("run", true);
  service::Json runTso =
      service::Json::object().set("run", true).set("memoryModel", "tso");
  service::Json first =
      parseOk(server.handlePayload(makeRequest("analyze", kSource, runSc)));
  service::Json second =
      parseOk(server.handlePayload(makeRequest("analyze", kSource, runTso)));
  EXPECT_EQ(first.getString("cached", "?"), "miss");
  // Same source, same flags, different model: a fresh key, not a hit.
  EXPECT_EQ(second.getString("cached", "?"), "miss");
}

TEST(ServiceCache, DporKeysDiverge) {
  // The dpor flag changes the reduction counters carried by explore
  // results (and the --explore stats lines), so it is part of both the
  // RunOptions cache key and the explore request fingerprint: a
  // dpor-off request must never be served a dpor-on cached payload.
  driver::RunOptions on, off;
  off.dpor = false;
  EXPECT_NE(on.cacheKey(), off.cacheKey());

  service::Server server({});
  service::Json reduced =
      parseOk(server.handlePayload(makeRequest("explore", kRacySource)));
  service::Json full = parseOk(server.handlePayload(makeRequest(
      "explore", kRacySource, service::Json::object().set("dpor", false))));
  ASSERT_TRUE(reduced.getBool("ok", false));
  ASSERT_TRUE(full.getBool("ok", false));
  EXPECT_EQ(reduced.getString("cached", "?"), "miss");
  // Same source, dpor off: a fresh key, not a hit.
  EXPECT_EQ(full.getString("cached", "?"), "miss");
  // The exactness contract: reduced and unreduced agree on everything a
  // client may act on; only the reduction metadata differs.
  const service::Json& r = reduced.get("result");
  const service::Json& f = full.get("result");
  EXPECT_EQ(r.get("outputs").write(), f.get("outputs").write());
  EXPECT_EQ(r.getBool("anyDeadlock", true), f.getBool("anyDeadlock", true));
  EXPECT_TRUE(r.get("dpor").getBool("enabled", false));
  EXPECT_FALSE(f.get("dpor").getBool("enabled", true));
  EXPECT_EQ(f.get("dpor").getInt("depQueries", -1), 0);
  // The daemon's aggregate counters saw only the reduced run's queries.
  EXPECT_GE(server.counters().dporDepQueries.value(), 1u);
}

TEST(ServiceCache, RelatedRequestReusesLiveCompilation) {
  // analyze then csan on the same source: different response keys, same
  // source fingerprint — the second request must reuse the analyzed
  // program instead of re-running the pipeline.
  service::Server server({});
  (void)server.handlePayload(makeRequest("analyze", kSource));
  service::Json resp =
      parseOk(server.handlePayload(makeRequest("csan", kSource)));
  ASSERT_TRUE(resp.getBool("ok", false));
  EXPECT_EQ(resp.getString("cached", "?"), "compilation");
  EXPECT_EQ(server.cache().counters().compilationHits.value(), 1u);

  driver::RunOptions o;
  o.doCsan = true;
  EXPECT_EQ(resp.get("result").getString("err", "?"),
            driver::runSource(kSource, "test.cp", o).err);
}

TEST(ServiceCache, EvictionRecomputesIdentically) {
  service::ServerOptions opts;
  opts.memEntries = 1;
  service::Server server(opts);
  service::Json first =
      parseOk(server.handlePayload(makeRequest("analyze", kSource)));
  (void)server.handlePayload(makeRequest("analyze", kRacySource));
  service::Json again =
      parseOk(server.handlePayload(makeRequest("analyze", kSource)));
  EXPECT_EQ(again.getString("cached", "?"), "miss");  // evicted
  EXPECT_EQ(again.get("result").write(), first.get("result").write());
  EXPECT_GE(server.cache().counters().responseEvictions.value(), 1u);
}

TEST(ServiceCache, ZeroCapacityDisablesMemoryTier) {
  service::ServerOptions opts;
  opts.memEntries = 0;
  service::Server server(opts);
  (void)server.handlePayload(makeRequest("analyze", kSource));
  service::Json second =
      parseOk(server.handlePayload(makeRequest("analyze", kSource)));
  EXPECT_EQ(second.getString("cached", "?"), "miss");
}

TEST(ServiceCache, DiskTierSurvivesRestart) {
  ScratchDir dir("disk_restart");
  service::ServerOptions opts;
  opts.cacheDir = dir.path.string();
  std::string firstResult;
  {
    service::Server server(opts);
    service::Json first =
        parseOk(server.handlePayload(makeRequest("analyze", kSource)));
    firstResult = first.get("result").write();
  }
  service::Server restarted(opts);
  service::Json warm =
      parseOk(restarted.handlePayload(makeRequest("analyze", kSource)));
  EXPECT_EQ(warm.getString("cached", "?"), "disk");
  EXPECT_EQ(warm.get("result").write(), firstResult);
  EXPECT_EQ(restarted.cache().counters().diskHits.value(), 1u);
}

TEST(ServiceCache, CorruptedDiskEntriesAreRejectedAndRecomputed) {
  ScratchDir dir("disk_corrupt");
  service::ServerOptions opts;
  opts.cacheDir = dir.path.string();
  std::string expected;
  {
    service::Server server(opts);
    expected = parseOk(server.handlePayload(makeRequest("analyze", kSource)))
                   .get("result")
                   .write();
  }
  // Flip a payload byte in every entry; the checksum must catch it.
  std::size_t corrupted = 0;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    std::fstream f(entry.path(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put('~');
    ++corrupted;
  }
  ASSERT_GE(corrupted, 1u);

  service::Server restarted(opts);
  service::Json resp =
      parseOk(restarted.handlePayload(makeRequest("analyze", kSource)));
  EXPECT_EQ(resp.getString("cached", "?"), "miss");
  EXPECT_EQ(resp.get("result").write(), expected);
  EXPECT_GE(restarted.cache().disk().corruptRejected.value(), 1u);
}

TEST(ServiceCache, OtherBuildsArtifactsAreRejected) {
  ScratchDir dir("disk_build");
  service::ServerOptions opts;
  opts.cacheDir = dir.path.string();
  {
    service::Server server(opts);
    (void)server.handlePayload(makeRequest("analyze", kSource));
  }
  // Rewrite each entry's header claiming a different build fingerprint.
  std::size_t rewritten = 0;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::string header;
    std::getline(in, header);
    std::string rest((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    const std::size_t pos = header.find(support::buildFingerprint());
    ASSERT_NE(pos, std::string::npos);
    header.replace(pos, support::buildFingerprint().size(),
                   std::string(32, 'f'));
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out << header << '\n' << rest;
    ++rewritten;
  }
  ASSERT_GE(rewritten, 1u);

  service::Server restarted(opts);
  service::Json resp =
      parseOk(restarted.handlePayload(makeRequest("analyze", kSource)));
  EXPECT_EQ(resp.getString("cached", "?"), "miss");
  EXPECT_GE(restarted.cache().disk().buildRejected.value(), 1u);
}

TEST(ServiceCache, StartupSweepsLeftoverTmpFiles) {
  ScratchDir dir("disk_sweep");
  const fs::path tmp =
      dir.path / ("deadbeef.art.tmp." + std::to_string(deadPid()) + ".0");
  std::ofstream(tmp) << "partial write from a crashed daemon";
  ASSERT_TRUE(fs::exists(tmp));
  service::ServerOptions opts;
  opts.cacheDir = dir.path.string();
  service::Server server(opts);
  EXPECT_FALSE(fs::exists(tmp));
}

TEST(ServiceCache, UnwritableDiskDegradesToMemoryOnlyWithoutFailing) {
  ScratchDir dir("disk_degrade");
  service::ServerOptions opts;
  opts.cacheDir = dir.path.string();
  service::Server server(opts);
  // Yank the directory out from under the store: every insert's tmp-file
  // open now fails (ENOENT — a non-fatal errno, so the store tolerates
  // kWriteFailureLimit consecutive failures before giving up on disk).
  fs::remove_all(dir.path);
  const unsigned limit = service::DiskStore::kWriteFailureLimit;
  for (unsigned i = 0; i <= limit; ++i) {
    const std::string source =
        "int v" + std::to_string(i) + " = " + std::to_string(i) +
        "; print(v" + std::to_string(i) + ");";
    service::Json resp =
        parseOk(server.handlePayload(makeRequest("analyze", source)));
    // Requests never fail on cache-write trouble.
    ASSERT_TRUE(resp.getBool("ok", false)) << i;
  }
  EXPECT_FALSE(server.cache().disk().writesEnabled());
  EXPECT_EQ(server.cache().disk().degraded.value(), 1u);
  EXPECT_GE(server.cache().disk().writeFailed.value(), limit);
  // The memory tiers still serve, and stats report the degrade.
  service::Json warm = parseOk(
      server.handlePayload(makeRequest("analyze", "int v0 = 0; print(v0);")));
  EXPECT_EQ(warm.getString("cached", "?"), "memory");
  service::Json stats =
      parseOk(server.handlePayload(R"({"id":1,"method":"stats"})"));
  EXPECT_EQ(stats.get("result").get("cache").getInt("diskDegraded", 0), 1);
  dir.path.clear();  // nothing left to clean up
}

TEST(ServiceCache, FatalWriteErrnoDegradesImmediately) {
  // EACCES/EROFS/ENOSPC-class failures don't get the consecutive-failure
  // grace: the first one flips the store to memory-only. Root bypasses
  // permission bits, so drive noteWriteFailure through a file standing
  // where the tmp file's parent directory should be (ENOTDIR is not in
  // the fatal set — use the public insert path against a directory that
  // is really a file only when not running as root).
  ScratchDir dir("disk_fatal");
  service::DiskStore store(dir.path.string());
  ASSERT_TRUE(store.writesEnabled());
  if (::geteuid() != 0) {
    fs::permissions(dir.path, fs::perms::owner_read | fs::perms::owner_exec);
    store.insert(support::fingerprintBytes("k"), "payload");
    EXPECT_FALSE(store.writesEnabled());
    EXPECT_EQ(store.degraded.value(), 1u);
    fs::permissions(dir.path, fs::perms::owner_all);
  } else {
    // As root, exhaust the non-fatal path instead so the degrade is
    // still exercised end to end.
    fs::remove_all(dir.path);
    for (unsigned i = 0; i <= service::DiskStore::kWriteFailureLimit; ++i)
      store.insert(support::fingerprintBytes(std::to_string(i)), "payload");
    EXPECT_FALSE(store.writesEnabled());
    EXPECT_EQ(store.degraded.value(), 1u);
  }
}

TEST(ServiceCache, SweepSparesLiveSiblingsTmpFiles) {
  // Fleet workers share one cache directory; a restarting worker's
  // startup sweep must not tear a live sibling's in-flight tmp write out
  // from under its rename. Our own pid stands in for the live sibling.
  ScratchDir dir("disk_sweep_live");
  const fs::path live =
      dir.path / ("feedf00d.art.tmp." + std::to_string(::getpid()) + ".7");
  const fs::path dead =
      dir.path / ("deadbeef.art.tmp." + std::to_string(deadPid()) + ".0");
  std::ofstream(live) << "sibling mid-insert";
  std::ofstream(dead) << "crashed writer";
  service::ServerOptions opts;
  opts.cacheDir = dir.path.string();
  service::Server server(opts);
  EXPECT_TRUE(fs::exists(live));
  EXPECT_FALSE(fs::exists(dead));
}

// ---------------------------------------------------------------------------
// Stats, explore, version

TEST(ServiceServer, StatsReportsCountersAndBuild) {
  service::Server server({});
  (void)server.handlePayload(makeRequest("analyze", kSource));
  (void)server.handlePayload(makeRequest("analyze", kSource));
  service::Json resp = parseOk(server.handlePayload(
      R"({"id":9,"method":"stats"})"));
  ASSERT_TRUE(resp.getBool("ok", false));
  const service::Json& result = resp.get("result");
  EXPECT_EQ(result.getString("version", ""), support::versionString());
  EXPECT_EQ(result.getString("build", ""), support::buildFingerprint());
  EXPECT_EQ(result.getInt("requests", 0), 3);
  EXPECT_EQ(result.get("cache").getInt("responseHits", -1), 1);
  EXPECT_EQ(result.get("cache").getInt("misses", -1), 1);
}

TEST(ServiceServer, ExploreReturnsOutputsAndCaches) {
  service::Server server({});
  service::Json resp =
      parseOk(server.handlePayload(makeRequest("explore", kRacySource)));
  ASSERT_TRUE(resp.getBool("ok", false));
  const service::Json& result = resp.get("result");
  EXPECT_TRUE(result.getBool("complete", false));
  // The racy program prints 1 or 2 depending on schedule.
  EXPECT_EQ(result.get("outputs").items().size(), 2u);
  service::Json warm =
      parseOk(server.handlePayload(makeRequest("explore", kRacySource)));
  EXPECT_EQ(warm.getString("cached", "?"), "memory");
  EXPECT_EQ(warm.get("result").write(), result.write());
}

// A racy program whose statements sit on their own lines, so the repair
// engine's wrap candidates apply (kRacySource's one-line thread bodies
// share their line with the thread header and are deliberately
// unfixable).
constexpr const char* kFixableSource = R"(int a;
cobegin {
  thread T0 {
    a = a + 1;
  }
  thread T1 {
    a = a + 2;
  }
}
print(a);
)";

TEST(ServiceServer, FixRepairsVerifiesAndCaches) {
  service::Server server({});
  service::Json resp =
      parseOk(server.handlePayload(makeRequest("fix", kFixableSource)));
  ASSERT_TRUE(resp.getBool("ok", false)) << resp.write();
  EXPECT_EQ(resp.getString("method", "?"), "fix");
  const service::Json& result = resp.get("result");
  EXPECT_EQ(result.getString("status", "?"), "fixed");
  EXPECT_EQ(result.getInt("code", -1), 0);
  EXPECT_TRUE(result.getBool("raceFree", false));
  EXPECT_TRUE(result.getBool("deadlockFree", false));
  EXPECT_EQ(result.get("applied").items().size(), 1u);
  EXPECT_TRUE(result.get("unfixed").items().empty());
  // The patched source is real program text with the new protection.
  const std::string patched = result.getString("patchedSource", "");
  EXPECT_NE(patched.find("lock __fix0;"), std::string::npos) << patched;
  EXPECT_FALSE(result.get("diff").items().empty());
  // The embedded report is the exact bytes `cssamec --fix` prints.
  driver::RunOptions o;
  o.doFix = true;
  const driver::RunOutput standalone =
      driver::runSource(kFixableSource, "test.cp", o);
  EXPECT_EQ(result.getString("report", "?"), standalone.out);

  // Warm path: byte-identical response from the memory tier.
  service::Json warm =
      parseOk(server.handlePayload(makeRequest("fix", kFixableSource)));
  EXPECT_EQ(warm.getString("cached", "?"), "memory");
  EXPECT_EQ(warm.get("result").write(), result.write());

  // The repair.* counter family reached the stats JSON (and was not
  // double-counted by the cache hit).
  service::Json stats =
      parseOk(server.handlePayload(R"({"id":9,"method":"stats"})"));
  const service::Json& s = stats.get("result");
  EXPECT_EQ(s.get("methods").getInt("fix", -1), 2);
  EXPECT_EQ(s.get("repair").getInt("targets", -1), 1);
  EXPECT_EQ(s.get("repair").getInt("candidatesVerified", -1), 1);
  EXPECT_GE(s.get("repair").getInt("candidatesTried", -1), 1);
}

TEST(ServiceServer, FixNoSafeFixIsAnOkEnvelopeWithExitCode) {
  service::Server server({});
  service::Json resp =
      parseOk(server.handlePayload(makeRequest("fix", kRacySource)));
  ASSERT_TRUE(resp.getBool("ok", false)) << resp.write();
  const service::Json& result = resp.get("result");
  EXPECT_EQ(result.getString("status", "?"), "no-safe-fix");
  EXPECT_EQ(result.getInt("code", -1), 1);
  EXPECT_TRUE(result.get("applied").items().empty());
  EXPECT_FALSE(result.get("unfixed").items().empty());
}

TEST(ServiceServer, FixValidatesParamsLikeMemoryModel) {
  service::Server server({});
  // Non-string fix option.
  service::Json bad = service::Json::object().set("fix", 7);
  service::Json resp = parseOk(
      server.handlePayload(makeRequest("fix", kFixableSource, bad)));
  EXPECT_FALSE(resp.getBool("ok", true));
  EXPECT_EQ(resp.get("error").getString("kind", "?"), "invalid-request");
  // Unknown fix target, same error contract as a bad memoryModel.
  service::Json bogus = service::Json::object().set("fix", "everything");
  resp = parseOk(
      server.handlePayload(makeRequest("fix", kFixableSource, bogus)));
  EXPECT_FALSE(resp.getBool("ok", true));
  EXPECT_EQ(resp.get("error").getString("kind", "?"), "invalid-request");
  EXPECT_NE(resp.get("error").getString("message", "").find(
                "unknown fix target"),
            std::string::npos)
      << resp.write();
  // The same validation guards the analysis methods' options too.
  resp = parseOk(
      server.handlePayload(makeRequest("csan", kFixableSource, bogus)));
  EXPECT_FALSE(resp.getBool("ok", true));
  EXPECT_EQ(resp.get("error").getString("kind", "?"), "invalid-request");
}

TEST(ServiceCache, FixKeysDivergeFromReadMethods) {
  // A fix response must never be served to a csan request (or any other
  // read method) for the same source: doFix and the fix target are part
  // of cacheKey() — v5 keys — so the request fingerprints differ.
  driver::RunOptions read, fix;
  fix.doFix = true;
  EXPECT_NE(read.cacheKey(), fix.cacheKey());
  driver::RunOptions fixRace = fix;
  fixRace.fixTarget = "race";
  EXPECT_NE(fix.cacheKey(), fixRace.cacheKey());

  service::Server server({});
  service::Json first =
      parseOk(server.handlePayload(makeRequest("csan", kFixableSource)));
  service::Json second =
      parseOk(server.handlePayload(makeRequest("fix", kFixableSource)));
  service::Json third = parseOk(server.handlePayload(makeRequest(
      "fix", kFixableSource, service::Json::object().set("fix", "race"))));
  ASSERT_TRUE(first.getBool("ok", false));
  ASSERT_TRUE(second.getBool("ok", false));
  ASSERT_TRUE(third.getBool("ok", false));
  EXPECT_EQ(first.getString("cached", "?"), "miss");
  // Same source: fresh keys, not hits against the csan entry.
  EXPECT_EQ(second.getString("cached", "?"), "miss");
  // Same source, same method, narrower target: a fresh key again.
  EXPECT_EQ(third.getString("cached", "?"), "miss");
}

TEST(ServiceServer, VersionLineNamesToolAndBuild) {
  const std::string line = support::versionLine("cssamed");
  EXPECT_EQ(line.find("cssamed "), 0u);
  EXPECT_NE(line.find(support::versionString()), std::string::npos);
  EXPECT_NE(line.find(support::buildFingerprint()), std::string::npos);
}

// ---------------------------------------------------------------------------
// Transport: the Unix-socket accept loop

TEST(ServiceSocket, ServesConcurrentClientsAndShutdownMethod) {
  ScratchDir dir("sock");
  const std::string sock = (dir.path / "d.sock").string();
  service::Server server({});
  std::thread daemon([&] { EXPECT_TRUE(server.serveUnix(sock).ok()); });
  while (!fs::exists(sock)) std::this_thread::yield();

  // Two clients with interleaved lifetimes, multiple requests each.
  Expected<support::FdStream> c1 = support::connectUnix(sock);
  Expected<support::FdStream> c2 = support::connectUnix(sock);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  service::Json r1 = roundTrip(*c1, makeRequest("analyze", kSource));
  service::Json r2 = roundTrip(*c2, makeRequest("analyze", kSource));
  EXPECT_TRUE(r1.getBool("ok", false));
  EXPECT_TRUE(r2.getBool("ok", false));
  EXPECT_EQ(r1.get("result").write(), r2.get("result").write());

  service::Json bye =
      roundTrip(*c1, R"({"id":99,"method":"shutdown"})");
  EXPECT_TRUE(bye.getBool("ok", false));
  daemon.join();
  EXPECT_TRUE(server.shutdownRequested());
  EXPECT_GE(server.cache().counters().responseHits.value(), 1u);
}

TEST(ServiceSocket, FramingViolationGetsFinalErrorThenDisconnect) {
  ScratchDir dir("sock_bad");
  const std::string sock = (dir.path / "d.sock").string();
  service::Server server({});
  std::thread daemon([&] { EXPECT_TRUE(server.serveUnix(sock).ok()); });
  while (!fs::exists(sock)) std::this_thread::yield();

  {
    Expected<support::FdStream> conn = support::connectUnix(sock);
    ASSERT_TRUE(conn.ok());
    const char junk[8] = {'X', 'X', 'X', 'X', 4, 0, 0, 0};
    ASSERT_TRUE(conn->writeAll(junk, sizeof junk).ok());
    std::string response;
    ASSERT_EQ(
        service::readFrame(*conn, response, service::kDefaultMaxPayload),
        service::FrameStatus::Ok);
    service::Json resp = parseOk(response);
    EXPECT_FALSE(resp.getBool("ok", true));
    EXPECT_EQ(resp.get("error").getString("kind", ""), "bad-frame");
    // The server hangs up after the final error.
    std::string more;
    EXPECT_EQ(
        service::readFrame(*conn, more, service::kDefaultMaxPayload),
        service::FrameStatus::Eof);
  }

  // The daemon survived and serves fresh connections.
  Expected<support::FdStream> conn2 = support::connectUnix(sock);
  ASSERT_TRUE(conn2.ok());
  service::Json ok = roundTrip(*conn2, makeRequest("analyze", kSource));
  EXPECT_TRUE(ok.getBool("ok", false));
  EXPECT_EQ(server.counters().badFrames.value(), 1u);

  server.requestShutdown();
  daemon.join();
}

TEST(ServiceSocket, OversizedPayloadIsRefusedStructurally) {
  ScratchDir dir("sock_big");
  const std::string sock = (dir.path / "d.sock").string();
  service::ServerOptions opts;
  opts.maxPayload = 1024;
  service::Server server(opts);
  std::thread daemon([&] { EXPECT_TRUE(server.serveUnix(sock).ok()); });
  while (!fs::exists(sock)) std::this_thread::yield();

  Expected<support::FdStream> conn = support::connectUnix(sock);
  ASSERT_TRUE(conn.ok());
  // Header promising 1 MiB against a 1 KiB cap.
  const unsigned char header[8] = {'c', 's', 'a', 'J', 0, 0, 0x10, 0};
  ASSERT_TRUE(conn->writeAll(header, sizeof header).ok());
  std::string response;
  ASSERT_EQ(service::readFrame(*conn, response, service::kDefaultMaxPayload),
            service::FrameStatus::Ok);
  service::Json resp = parseOk(response);
  EXPECT_FALSE(resp.getBool("ok", true));
  EXPECT_NE(resp.get("error").getString("message", "").find("too-large"),
            std::string::npos);

  server.requestShutdown();
  daemon.join();
}

// ---------------------------------------------------------------------------
// Fault injection: SIGKILL the daemon, restart from its disk cache

TEST(ServiceFaultInject, KilledDaemonRestartsCleanlyFromDiskCache) {
  ScratchDir dir("kill");
  const fs::path cacheDir = dir.path / "cache";
  const std::string sock = (dir.path / "d.sock").string();

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Daemon process. SIGKILLed below; _exit so no gtest teardown runs.
    service::ServerOptions opts;
    opts.cacheDir = cacheDir.string();
    service::Server server(opts);
    (void)server.serveUnix(sock);
    ::_exit(0);
  }

  while (!fs::exists(sock)) std::this_thread::yield();
  Expected<support::FdStream> conn = support::connectUnix(sock);
  ASSERT_TRUE(conn.ok());

  // One completed request — its response is on disk once answered.
  service::Json first = roundTrip(*conn, makeRequest("analyze", kSource));
  ASSERT_TRUE(first.getBool("ok", false));

  // Fire a second request and kill the daemon without waiting: the kill
  // lands mid-request. Whatever half-written state it leaves must not
  // poison the cache directory.
  ASSERT_TRUE(service::writeFrame(*conn, makeRequest("csan", kRacySource),
                                  service::kDefaultMaxPayload)
                  .ok());
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));

  // Simulate the worst case the tmp+rename protocol allows: a partial
  // tmp file from a write that the kill interrupted — named by the dead
  // daemon's own (now reaped) pid, exactly as its insert would have.
  fs::create_directories(cacheDir);
  const fs::path torn =
      cacheDir / ("feed.art.tmp." + std::to_string(child) + ".0");
  std::ofstream(torn) << "torn write";

  // Restart on the same directory: the completed request is served from
  // disk byte-identically, the torn tmp file is swept, and the
  // interrupted request computes fresh.
  service::ServerOptions opts;
  opts.cacheDir = cacheDir.string();
  service::Server restarted(opts);
  EXPECT_FALSE(fs::exists(torn));
  service::Json warm =
      parseOk(restarted.handlePayload(makeRequest("analyze", kSource)));
  EXPECT_EQ(warm.getString("cached", "?"), "disk");
  EXPECT_EQ(warm.get("result").write(), first.get("result").write());
  service::Json fresh =
      parseOk(restarted.handlePayload(makeRequest("csan", kRacySource)));
  EXPECT_TRUE(fresh.getBool("ok", false));
}

}  // namespace
}  // namespace cssame
