// Unit tests for the lexer and parser: tokens, precedence, scoping,
// declarations, error reporting and recovery.
#include <gtest/gtest.h>

#include <set>

#include "src/ir/printer.h"
#include "src/ir/verify.h"
#include "src/parser/lexer.h"
#include "src/parser/parser.h"

namespace cssame::parser {
namespace {

TEST(Lexer, BasicTokens) {
  LexResult r = lex("int x = 42; if (x <= 3) {}");
  ASSERT_TRUE(r.errors.empty());
  std::vector<TokKind> kinds;
  for (const Token& t : r.tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds.front(), TokKind::KwInt);
  EXPECT_EQ(kinds.back(), TokKind::End);
  // int x = 42 ; if ( x <= 3 ) { } <eof>
  EXPECT_EQ(kinds.size(), 14u);
  EXPECT_EQ(r.tokens[3].intValue, 42);
  EXPECT_EQ(r.tokens[1].text, "x");
}

TEST(Lexer, OperatorsAndComments) {
  LexResult r = lex("a == b != c && d || !e // comment\n/* block\n*/ a <= b >= c");
  ASSERT_TRUE(r.errors.empty());
  std::vector<TokKind> kinds;
  for (const Token& t : r.tokens) kinds.push_back(t.kind);
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokKind::EqEq), kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokKind::Ne), kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokKind::AndAnd), kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokKind::OrOr), kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokKind::Bang), kinds.end());
}

TEST(Lexer, TracksLineAndColumn) {
  LexResult r = lex("a\n  b");
  EXPECT_EQ(r.tokens[0].loc.line, 1u);
  EXPECT_EQ(r.tokens[0].loc.column, 1u);
  EXPECT_EQ(r.tokens[1].loc.line, 2u);
  EXPECT_EQ(r.tokens[1].loc.column, 3u);
}

TEST(Lexer, ReportsBadCharacters) {
  // A single '&' is the address-of operator now, so only '@' is bad.
  LexResult r = lex("a @ b & c");
  EXPECT_EQ(r.errors.size(), 1u);
}

TEST(Lexer, UnterminatedBlockComment) {
  LexResult r = lex("a /* never closed");
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_NE(r.errors[0].second.find("unterminated"), std::string::npos);
}

TEST(Lexer, IntegerOverflowDiagnosed) {
  LexResult r = lex("x = 999999999999999999999999;");
  EXPECT_EQ(r.errors.size(), 1u);
}

TEST(Parser, Precedence) {
  ir::Program p = parseOrDie("int x; x = 1 + 2 * 3 - 4 / 2;");
  // ((1 + (2*3)) - (4/2))
  const ir::Expr& e = *p.body[0]->expr;
  ASSERT_EQ(e.kind, ir::ExprKind::Binary);
  EXPECT_EQ(e.binop, ir::BinOp::Sub);
  EXPECT_EQ(e.operands[0]->binop, ir::BinOp::Add);
  EXPECT_EQ(e.operands[0]->operands[1]->binop, ir::BinOp::Mul);
  EXPECT_EQ(e.operands[1]->binop, ir::BinOp::Div);
}

TEST(Parser, LeftAssociativity) {
  ir::Program p = parseOrDie("int x; x = 10 - 4 - 3;");
  const ir::Expr& e = *p.body[0]->expr;
  // (10 - 4) - 3
  EXPECT_EQ(e.operands[0]->kind, ir::ExprKind::Binary);
  EXPECT_EQ(e.operands[1]->kind, ir::ExprKind::IntConst);
  EXPECT_EQ(e.operands[1]->intValue, 3);
}

TEST(Parser, LogicalPrecedence) {
  ir::Program p = parseOrDie("int x; x = 1 < 2 && 3 == 3 || 0;");
  const ir::Expr& e = *p.body[0]->expr;
  EXPECT_EQ(e.binop, ir::BinOp::Or);
  EXPECT_EQ(e.operands[0]->binop, ir::BinOp::And);
}

TEST(Parser, UnaryOperators) {
  ir::Program p = parseOrDie("int x; x = --3; x = !(x > 1);");
  EXPECT_EQ(p.body[0]->expr->kind, ir::ExprKind::Unary);
  EXPECT_EQ(p.body[0]->expr->operands[0]->kind, ir::ExprKind::Unary);
  EXPECT_EQ(p.body[1]->expr->unop, ir::UnOp::Not);
}

TEST(Parser, DeclarationsWithInitializers) {
  ir::Program p = parseOrDie("int a = 1, b, c = 3;");
  // Two Assign statements (a and c); b gets no initializer.
  EXPECT_EQ(p.body.size(), 2u);
  EXPECT_EQ(p.symbols.size(), 3u);
}

TEST(Parser, LockDeclVsLockStmt) {
  ir::Program p = parseOrDie("lock L; lock(L); unlock(L);");
  ASSERT_EQ(p.body.size(), 2u);
  EXPECT_EQ(p.body[0]->kind, ir::StmtKind::Lock);
  EXPECT_EQ(p.body[1]->kind, ir::StmtKind::Unlock);
  EXPECT_EQ(p.symbols[p.symbols.lookup("L")].kind, ir::SymbolKind::Lock);
}

TEST(Parser, SharedVsPrivateVariables) {
  ir::Program p = parseOrDie(R"(
    int shared_one;
    cobegin {
      thread { int priv; priv = 1; shared_one = priv; }
    }
  )");
  EXPECT_TRUE(p.symbols[p.symbols.lookup("shared_one")].shared);
  EXPECT_FALSE(p.symbols[p.symbols.lookup("priv")].shared);
}

TEST(Parser, ScopingAllowsShadowing) {
  ir::Program p = parseOrDie(R"(
    int x;
    x = 1;
    { int x; x = 2; }
    x = 3;
  )");
  // Two distinct symbols named x; outer assignments bind to the outer one.
  EXPECT_TRUE(ir::verify(p).empty());
  ASSERT_EQ(p.body.size(), 3u);
  EXPECT_EQ(p.body[0]->lhs, p.body[2]->lhs);
  EXPECT_NE(p.body[0]->lhs, p.body[1]->lhs);
}

TEST(Parser, FunctionsImplicitlyDeclared) {
  ir::Program p = parseOrDie("int x; x = f(1) + f(2); g(x);");
  EXPECT_EQ(p.symbols[p.symbols.lookup("f")].kind, ir::SymbolKind::Function);
  EXPECT_EQ(p.symbols[p.symbols.lookup("g")].kind, ir::SymbolKind::Function);
  // f used twice resolves to one symbol.
  std::size_t fCount = 0;
  for (const auto& s : p.symbols.all())
    if (s.name == "f") ++fCount;
  EXPECT_EQ(fCount, 1u);
}

TEST(Parser, CobeginThreadsNamedAndAnonymous) {
  ir::Program p = parseOrDie(R"(
    cobegin {
      thread producer { int a; a = 1; }
      thread { int b; b = 2; }
    }
  )");
  ASSERT_EQ(p.body.size(), 1u);
  ASSERT_EQ(p.body[0]->threads.size(), 2u);
  EXPECT_EQ(p.body[0]->threads[0].name, "producer");
  EXPECT_TRUE(p.body[0]->threads[1].name.empty());
}

TEST(ParserErrors, UndeclaredIdentifier) {
  DiagEngine diag;
  ir::Program p = parseProgram("x = 1;", diag);
  EXPECT_TRUE(diag.hasErrors());
  EXPECT_EQ(diag.countOf(DiagCode::UndeclaredIdentifier), 1u);
  (void)p;
}

TEST(ParserErrors, WrongSymbolKind) {
  DiagEngine diag;
  ir::Program p = parseProgram("lock L; L = 3;", diag);
  EXPECT_GE(diag.countOf(DiagCode::WrongSymbolKind), 1u);
  (void)p;
}

TEST(ParserErrors, RedeclarationInSameScope) {
  DiagEngine diag;
  ir::Program p = parseProgram("int a; int a;", diag);
  EXPECT_EQ(diag.countOf(DiagCode::Redeclaration), 1u);
  (void)p;
}

TEST(ParserErrors, RecoversAndContinues) {
  DiagEngine diag;
  ir::Program p = parseProgram("int a; a = ; a = 2; b = 3; a = 4;", diag);
  EXPECT_TRUE(diag.hasErrors());
  // Recovery must still see the later good statement a = 4.
  bool sawFour = false;
  ir::forEachStmt(p.body, [&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::Assign && s.expr &&
        s.expr->kind == ir::ExprKind::IntConst && s.expr->intValue == 4)
      sawFour = true;
  });
  EXPECT_TRUE(sawFour);
}

TEST(ParserErrors, CobeginWithoutThreads) {
  DiagEngine diag;
  (void)parseProgram("cobegin { }", diag);
  EXPECT_TRUE(diag.hasErrors());
}

TEST(Parser, BarrierStatement) {
  ir::Program p = parseOrDie("barrier;");
  ASSERT_EQ(p.body.size(), 1u);
  EXPECT_EQ(p.body[0]->kind, ir::StmtKind::Barrier);
  EXPECT_TRUE(ir::verify(p).empty());
}

TEST(Parser, DoallDesugarsToCobegin) {
  ir::Program p = parseOrDie(R"(
    int s; lock L;
    doall i = 0, 3 {
      lock(L);
      s = s + i;
      unlock(L);
    }
    print(s);
  )");
  EXPECT_TRUE(ir::verify(p).empty());
  const ir::Stmt* co = nullptr;
  for (const auto& s : p.body)
    if (s->kind == ir::StmtKind::Cobegin) co = s.get();
  ASSERT_NE(co, nullptr);
  ASSERT_EQ(co->threads.size(), 4u);
  // Each iteration: private index initialized to its value, then body.
  for (std::size_t t = 0; t < 4; ++t) {
    const ir::StmtList& body = co->threads[t].body;
    ASSERT_GE(body.size(), 2u);
    EXPECT_EQ(body[0]->kind, ir::StmtKind::Assign);
    EXPECT_EQ(body[0]->expr->intValue, static_cast<long long>(t));
    EXPECT_FALSE(p.symbols[body[0]->lhs].shared);
  }
  // Four distinct private index symbols.
  std::set<SymbolId> idxSyms;
  for (std::size_t t = 0; t < 4; ++t)
    idxSyms.insert(co->threads[t].body[0]->lhs);
  EXPECT_EQ(idxSyms.size(), 4u);
}

TEST(Parser, DoallNegativeBounds) {
  ir::Program p = parseOrDie("int s; doall i = -1, 1 { s = i; }");
  const ir::Stmt* co = p.body[0].get();
  ASSERT_EQ(co->threads.size(), 3u);
  EXPECT_EQ(co->threads[0].body[0]->expr->intValue, -1);
}

TEST(ParserErrors, DoallNonLiteralBounds) {
  DiagEngine diag;
  (void)parseProgram("int n, s; doall i = 0, n { s = i; }", diag);
  EXPECT_TRUE(diag.hasErrors());
}

TEST(ParserErrors, DoallHugeTripCount) {
  DiagEngine diag;
  (void)parseProgram("int s; doall i = 0, 1000 { s = i; }", diag);
  EXPECT_TRUE(diag.hasErrors());
}

TEST(ParserErrors, DoallBodyErrorReportedOnce) {
  DiagEngine diag;
  (void)parseProgram("int s; doall i = 0, 9 { s = ; }", diag);
  EXPECT_TRUE(diag.hasErrors());
  EXPECT_LE(diag.errorCount(), 2u);  // not once per iteration
}

TEST(ParserErrors, CallOfVariable) {
  DiagEngine diag;
  (void)parseProgram("int a; a(1);", diag);
  EXPECT_GE(diag.countOf(DiagCode::WrongSymbolKind), 1u);
}

TEST(Parser, EmptyProgram) {
  ir::Program p = parseOrDie("");
  EXPECT_TRUE(p.body.empty());
  EXPECT_TRUE(ir::verify(p).empty());
}

TEST(Parser, SetWaitEvents) {
  ir::Program p = parseOrDie("event e; set(e); wait(e);");
  ASSERT_EQ(p.body.size(), 2u);
  EXPECT_EQ(p.body[0]->kind, ir::StmtKind::Set);
  EXPECT_EQ(p.body[1]->kind, ir::StmtKind::Wait);
}

}  // namespace
}  // namespace cssame::parser
