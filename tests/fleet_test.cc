// Supervision and degradation tests for the multi-process fleet
// (src/service/fleet.h).
//
// The load-bearing properties:
//   - fault isolation: SIGKILLing workers (idle, mid-request, or all at
//     once) never surfaces to the client — requests retry on a sibling
//     or fall back to the in-gateway server, byte-identical either way,
//   - supervision converges: dead workers are reaped and restarted with
//     backoff; a slot whose restarts keep failing (death before the
//     handshake) trips its circuit breaker and recovers once the child
//     starts surviving again,
//   - the aggregated stats body reports the gateway role, the fleet
//     counters and every slot's supervision state.
//
// Workers are real forked processes; every test that kills one asserts
// on client-visible behavior, not on scheduler internals.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "src/driver/runner.h"
#include "src/service/fleet.h"
#include "src/service/json.h"
#include "src/service/server.h"

namespace cssame {
namespace {

namespace fs = std::filesystem;

/// A unique, empty scratch directory; removed on destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("cssame_fleet_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  fs::path path;
};

/// A family of distinct valid programs, so consecutive requests land on
/// different cache keys (and different rendezvous owners).
std::string makeSource(int i) {
  return "int x = 0, y = 0;\nlock L;\ncobegin {\n  thread A { lock(L); x = "
         "x + " +
         std::to_string(i + 1) +
         "; unlock(L); }\n  thread B { lock(L); x = x * 2; unlock(L); y = " +
         std::to_string(i) + "; }\n}\nprint(x); print(y);\n";
}

std::string makeRequest(const std::string& source, int id) {
  service::Json req = service::Json::object();
  req.set("id", id)
      .set("method", "analyze")
      .set("file", "fleet.cp")
      .set("source", source)
      .set("options", service::Json::object());
  return req.write();
}

service::Json parseOk(const std::string& payload) {
  Expected<service::Json> j = service::parseJson(payload);
  EXPECT_TRUE(j.ok()) << payload;
  return j.ok() ? *j : service::Json();
}

/// Small-everything options: fast probes and restarts so supervision
/// tests converge in milliseconds, breaker reachable with few failures.
service::FleetOptions quickOptions(unsigned workers,
                                   const std::string& cacheDir = "") {
  service::FleetOptions fo;
  fo.workers = workers;
  fo.server.cacheDir = cacheDir;
  fo.probeIntervalMs = 20;
  fo.probeDeadlineMs = 5000;
  fo.requestDeadlineMs = 20000;
  fo.backoffBaseMs = 1;
  fo.backoffCeilingMs = 50;
  fo.breakerThreshold = 3;
  fo.breakerCooldownMs = 100;
  return fo;
}

// ---------------------------------------------------------------------------
// Routing and byte identity

TEST(FleetRouting, AnswersByteIdenticallyToStandaloneServer) {
  service::Fleet fleet(quickOptions(2));
  ASSERT_TRUE(fleet.waitAllLive(10000));
  service::Server standalone({});
  for (int i = 0; i < 6; ++i) {
    const std::string request = makeRequest(makeSource(i), i);
    service::Json viaFleet = parseOk(fleet.handlePayload(request));
    service::Json viaServer = parseOk(standalone.handlePayload(request));
    ASSERT_TRUE(viaFleet.getBool("ok", false));
    // The result (out/err/code) must match bytewise; the cache-tier tag
    // may legitimately differ between the two topologies.
    EXPECT_EQ(viaFleet.get("result").write(),
              viaServer.get("result").write());
  }
  EXPECT_GE(fleet.counters().routed.value(), 6u);
  EXPECT_EQ(fleet.counters().fallbacks.value(), 0u);
}

TEST(FleetRouting, IdenticalRequestsLandOnTheSameWorker) {
  service::Fleet fleet(quickOptions(4));
  ASSERT_TRUE(fleet.waitAllLive(10000));
  const std::string request = makeRequest(makeSource(0), 1);
  // Warm once, then repeat: every repeat must be served from the owning
  // worker's memory tier — proof the rendezvous route is stable.
  ASSERT_TRUE(parseOk(fleet.handlePayload(request)).getBool("ok", false));
  for (int i = 0; i < 4; ++i) {
    service::Json resp = parseOk(fleet.handlePayload(request));
    ASSERT_TRUE(resp.getBool("ok", false));
    EXPECT_EQ(resp.getString("cached", "?"), "memory");
  }
}

// ---------------------------------------------------------------------------
// Crash recovery

TEST(FleetSupervision, KilledWorkerIsRestarted) {
  service::Fleet fleet(quickOptions(2));
  ASSERT_TRUE(fleet.waitAllLive(10000));
  const pid_t victim = fleet.slotPid(0);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(victim, SIGKILL), 0);
  // The supervisor reaps and respawns; the slot comes back Live with a
  // new pid and a bumped restart count. (waitAllLive alone is not enough:
  // the slot still reads Live until the next probe notices the corpse.)
  for (int i = 0; i < 1000 && fleet.slotPid(0) == victim; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(fleet.waitAllLive(10000));
  EXPECT_NE(fleet.slotPid(0), victim);
  EXPECT_GE(fleet.slotRestarts(0), 1u);
  EXPECT_GE(fleet.counters().workerDeaths.value(), 1u);
  EXPECT_GE(fleet.counters().restarts.value(), 1u);
  // And it serves again.
  service::Json resp =
      parseOk(fleet.handlePayload(makeRequest(makeSource(1), 1)));
  EXPECT_TRUE(resp.getBool("ok", false));
}

TEST(FleetSupervision, DeadWorkerRetriesOnSiblingBeforeFallback) {
  // Slow the supervisor right down so the dead worker is discovered by a
  // routed request (EOF mid-exchange), not by a probe.
  service::FleetOptions fo = quickOptions(2);
  fo.probeIntervalMs = 10000;
  fo.backoffBaseMs = 10000;  // no restart during the burst either
  service::Fleet fleet(fo);
  ASSERT_TRUE(fleet.waitAllLive(10000));
  ASSERT_EQ(::kill(fleet.slotPid(0), SIGKILL), 0);
  // Distinct payloads: whichever ranks the dead slot primary fails over
  // to the live sibling on its second attempt.
  for (int i = 0; i < 10; ++i) {
    service::Json resp =
        parseOk(fleet.handlePayload(makeRequest(makeSource(i), i)));
    ASSERT_TRUE(resp.getBool("ok", false)) << i;
  }
  // Every request was answered by a worker (the sibling at worst); the
  // in-gateway fallback never had to step in.
  EXPECT_EQ(fleet.counters().routed.value(), 10u);
  EXPECT_EQ(fleet.counters().fallbacks.value(), 0u);
  EXPECT_GE(fleet.counters().retried.value(), 1u);
}

TEST(FleetSupervision, AllWorkersDeadFallsBackLocally) {
  service::FleetOptions fo = quickOptions(2);
  fo.probeIntervalMs = 10000;
  fo.backoffBaseMs = 10000;
  service::Fleet fleet(fo);
  ASSERT_TRUE(fleet.waitAllLive(10000));
  ASSERT_EQ(::kill(fleet.slotPid(0), SIGKILL), 0);
  ASSERT_EQ(::kill(fleet.slotPid(1), SIGKILL), 0);
  const std::string source = makeSource(3);
  service::Json resp = parseOk(fleet.handlePayload(makeRequest(source, 1)));
  ASSERT_TRUE(resp.getBool("ok", false));
  EXPECT_GE(fleet.counters().fallbacks.value(), 1u);
  // The degraded answer is still the standalone answer.
  driver::RunOutput expected =
      driver::runSource(source, "fleet.cp", driver::RunOptions{});
  const service::Json& result = resp.get("result");
  EXPECT_EQ(result.getString("out", ""), expected.out);
  EXPECT_EQ(result.getString("err", ""), expected.err);
  EXPECT_EQ(result.getInt("code", -1), expected.code);
}

TEST(FleetSupervision, RestartStormConverges) {
  ScratchDir dir("storm");
  service::Fleet fleet(quickOptions(3, dir.path.string()));
  ASSERT_TRUE(fleet.waitAllLive(10000));
  for (int round = 0; round < 3; ++round) {
    for (unsigned s = 0; s < fleet.workerCount(); ++s) {
      const pid_t pid = fleet.slotPid(s);
      if (pid > 0) ::kill(pid, SIGKILL);
    }
    // Clients keep getting answers throughout the massacre.
    service::Json resp = parseOk(
        fleet.handlePayload(makeRequest(makeSource(100 + round), round)));
    ASSERT_TRUE(resp.getBool("ok", false)) << round;
    ASSERT_TRUE(fleet.waitAllLive(10000)) << round;
  }
  EXPECT_GE(fleet.counters().workerDeaths.value(), 9u);
  EXPECT_GE(fleet.counters().restarts.value(), 9u);
}

// ---------------------------------------------------------------------------
// Backoff and circuit breaker

TEST(FleetSupervision, PreHandshakeDeathTripsBreakerThenRecovers) {
  // Slot 0's child _exit()s before serving until its 5th incarnation —
  // death-before-handshake, the restart-keeps-failing case. The breaker
  // must open after `breakerThreshold` consecutive failures and the slot
  // must still come back once the child survives.
  service::FleetOptions fo = quickOptions(2);
  fo.onWorkerStart = [](unsigned slot, std::uint64_t incarnation) {
    if (slot == 0 && incarnation < 5) ::_exit(7);
  };
  service::Fleet fleet(fo);
  // Slot 1 is unaffected and serves alone in the meantime.
  service::Json resp =
      parseOk(fleet.handlePayload(makeRequest(makeSource(0), 1)));
  EXPECT_TRUE(resp.getBool("ok", false));
  ASSERT_TRUE(fleet.waitAllLive(20000));
  EXPECT_GE(fleet.counters().failedRestarts.value(), 4u);
  EXPECT_GE(fleet.counters().breakerTrips.value(), 1u);
  EXPECT_EQ(fleet.slotState(0), service::SlotState::Live);
  // Live again means serving again.
  resp = parseOk(fleet.handlePayload(makeRequest(makeSource(1), 2)));
  EXPECT_TRUE(resp.getBool("ok", false));
}

// ---------------------------------------------------------------------------
// Gateway request handling

TEST(FleetGateway, StatsAggregatesFleetAndSlots) {
  service::Fleet fleet(quickOptions(2));
  ASSERT_TRUE(fleet.waitAllLive(10000));
  (void)fleet.handlePayload(makeRequest(makeSource(0), 1));
  service::Json resp =
      parseOk(fleet.handlePayload(R"({"id":9,"method":"stats"})"));
  ASSERT_TRUE(resp.getBool("ok", false));
  const service::Json& result = resp.get("result");
  EXPECT_EQ(result.getString("role", ""), "gateway");
  const service::Json& counters = result.get("fleet");
  ASSERT_TRUE(counters.isObject());
  EXPECT_EQ(counters.getInt("workers", 0), 2);
  EXPECT_GE(counters.getInt("routed", 0), 1);
  const service::Json& slots = result.get("slots");
  ASSERT_TRUE(slots.isArray());
  ASSERT_EQ(slots.items().size(), 2u);
  for (const service::Json& slot : slots.items()) {
    EXPECT_EQ(slot.getString("state", "?"), "live");
    // Each live worker contributed its own stats body.
    EXPECT_TRUE(slot.get("stats").isObject());
  }
  EXPECT_TRUE(result.get("fallback").isObject());
}

TEST(FleetGateway, MalformedRequestsGetStandaloneEnvelopes) {
  service::Fleet fleet(quickOptions(2));
  service::Server standalone({});
  for (const char* payload :
       {"{not json", R"({"id":1,"method":"no-such-method"})",
        R"({"id":2})", R"([1,2,3])"}) {
    EXPECT_EQ(fleet.handlePayload(payload), standalone.handlePayload(payload))
        << payload;
  }
}

TEST(FleetGateway, ShutdownStopsTheWholeFleet) {
  service::Fleet fleet(quickOptions(2));
  ASSERT_TRUE(fleet.waitAllLive(10000));
  service::Json resp =
      parseOk(fleet.handlePayload(R"({"id":1,"method":"shutdown"})"));
  EXPECT_TRUE(resp.getBool("ok", false));
  EXPECT_TRUE(fleet.shutdownRequested());
}

// ---------------------------------------------------------------------------
// Chaos sweep: kills during sustained load, byte-identity throughout

TEST(FleetChaos, KillLoopUnderLoadStaysByteIdentical) {
  ScratchDir dir("chaos");
  service::FleetOptions fo = quickOptions(2, dir.path.string());
  service::Fleet fleet(fo);
  ASSERT_TRUE(fleet.waitAllLive(10000));

  // Precompute the expected result body of each program once.
  constexpr int kPrograms = 8;
  std::vector<std::string> expected;
  for (int i = 0; i < kPrograms; ++i) {
    driver::RunOutput r =
        driver::runSource(makeSource(i), "fleet.cp", driver::RunOptions{});
    service::Json body = service::Json::object();
    body.set("out", r.out).set("err", r.err).set("code", r.code);
    expected.push_back(body.write());
  }

  unsigned kills = 0;
  for (int i = 0; i < 200; ++i) {
    if (i % 25 == 24) {
      // SIGKILL a live worker mid-stream — scan from a rotating start so
      // both slots get their turn, skipping slots mid-restart.
      for (unsigned probe = 0; probe < fleet.workerCount(); ++probe) {
        const unsigned s = (i / 25 + probe) % fleet.workerCount();
        const pid_t victim = fleet.slotPid(s);
        if (victim > 0 && ::kill(victim, SIGKILL) == 0) {
          ++kills;
          break;
        }
      }
    }
    service::Json resp = parseOk(
        fleet.handlePayload(makeRequest(makeSource(i % kPrograms), i)));
    ASSERT_TRUE(resp.getBool("ok", false)) << "request " << i;
    ASSERT_EQ(resp.get("result").write(), expected[i % kPrograms])
        << "request " << i;
  }
  EXPECT_GE(kills, 7u);
  EXPECT_GE(fleet.counters().workerDeaths.value(), 1u);
  // Zero client-visible errors is the whole point; the gateway's own
  // request count must cover every request we sent.
  EXPECT_EQ(fleet.counters().requests.value(), 200u);
}

}  // namespace
}  // namespace cssame
