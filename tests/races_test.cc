// Unit tests for the lock-consistency data race warnings (Section 6).
#include <gtest/gtest.h>

#include "src/driver/pipeline.h"
#include "src/mutex/races.h"
#include "src/parser/parser.h"

namespace cssame::mutex {
namespace {

RaceReport analyzeRaces(const char* src, DiagEngine* diagOut = nullptr) {
  ir::Program p = parser::parseOrDie(src);
  driver::Compilation c = driver::analyze(p, {.warnings = false});
  DiagEngine diag;
  RaceReport r = detectRaces(c.graph(), c.mhp(), c.mutexes(), diag);
  if (diagOut != nullptr) *diagOut = diag;
  return r;
}

TEST(Races, CleanLockedProgram) {
  RaceReport r = analyzeRaces(R"(
    int a; lock L;
    cobegin {
      thread { lock(L); a = a + 1; unlock(L); }
      thread { lock(L); a = a + 2; unlock(L); }
    }
    print(a);
  )");
  EXPECT_EQ(r.potentialRaces, 0u);
  EXPECT_EQ(r.inconsistentLocking, 0u);
}

TEST(Races, UnprotectedWriteWrite) {
  RaceReport r = analyzeRaces(R"(
    int a;
    cobegin {
      thread { a = 1; }
      thread { a = 2; }
    }
    print(a);
  )");
  EXPECT_EQ(r.potentialRaces, 1u);
}

TEST(Races, UnprotectedWriteRead) {
  RaceReport r = analyzeRaces(R"(
    int a, b;
    cobegin {
      thread { a = 1; }
      thread { b = a; }
    }
    print(b);
  )");
  EXPECT_EQ(r.potentialRaces, 1u);
}

TEST(Races, DifferentLocksAreInconsistent) {
  DiagEngine diag;
  RaceReport r = analyzeRaces(R"(
    int a; lock L1, L2;
    cobegin {
      thread { lock(L1); a = a + 1; unlock(L1); }
      thread { lock(L2); a = a + 2; unlock(L2); }
    }
    print(a);
  )", &diag);
  EXPECT_EQ(r.inconsistentLocking, 1u);
  EXPECT_EQ(r.potentialRaces, 1u);
  EXPECT_EQ(diag.countOf(DiagCode::InconsistentLocking), 1u);
}

TEST(Races, HalfProtectedWrite) {
  RaceReport r = analyzeRaces(R"(
    int a; lock L;
    cobegin {
      thread { lock(L); a = a + 1; unlock(L); }
      thread { a = 2; }
    }
    print(a);
  )");
  EXPECT_EQ(r.inconsistentLocking, 1u);
  EXPECT_EQ(r.potentialRaces, 1u);
}

TEST(Races, OrderedBySetWaitIsNoRace) {
  RaceReport r = analyzeRaces(R"(
    int a; event e;
    cobegin {
      thread { a = 1; set(e); }
      thread { wait(e); print(a); }
    }
  )");
  EXPECT_EQ(r.potentialRaces, 0u);
}

TEST(Races, SequentialAccessesNoWarning) {
  RaceReport r = analyzeRaces(R"(
    int a;
    a = 1;
    a = 2;
    cobegin {
      thread { int p; p = 1; }
      thread { int q; q = 2; }
    }
    print(a);
  )");
  EXPECT_EQ(r.potentialRaces, 0u);
  EXPECT_EQ(r.inconsistentLocking, 0u);
}

TEST(Races, TwoCommonLocksNoRace) {
  RaceReport r = analyzeRaces(R"(
    int a; lock L, M;
    cobegin {
      thread { lock(L); lock(M); a = a + 1; unlock(M); unlock(L); }
      thread { lock(L); lock(M); a = a + 2; unlock(M); unlock(L); }
    }
    print(a);
  )");
  EXPECT_EQ(r.potentialRaces, 0u);
  EXPECT_EQ(r.inconsistentLocking, 0u);
}

TEST(Races, RaceInNestedCobegin) {
  RaceReport r = analyzeRaces(R"(
    int a;
    cobegin {
      thread {
        cobegin {
          thread { a = 1; }
          thread { a = 2; }
        }
      }
      thread { int p; p = 3; }
    }
    print(a);
  )");
  EXPECT_EQ(r.potentialRaces, 1u);
}

}  // namespace
}  // namespace cssame::mutex
