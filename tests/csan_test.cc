// Tests for the csan static concurrency analyzer: witness traces,
// per-family minimal triggers, subsumption of the original Section 6
// checks, and dynamic cross-validation of the race engine.
#include <gtest/gtest.h>

#include "src/driver/pipeline.h"
#include "src/interp/explore.h"
#include "src/mutex/deadlock.h"
#include "src/mutex/races.h"
#include "src/parser/parser.h"
#include "src/sanalysis/csan.h"
#include "src/workload/paper_programs.h"

namespace cssame::sanalysis {
namespace {

CsanReport analyze(const char* src, DiagEngine* out = nullptr,
                   const CsanOptions& opts = {}) {
  ir::Program p = parser::parseOrDie(src);
  driver::Compilation c = driver::analyze(p, {.warnings = false});
  DiagEngine diag;
  CsanReport r = runCsan(c, diag, opts);
  if (out != nullptr) *out = diag;
  return r;
}

TEST(Csan, CleanProgramHasNoFindings) {
  CsanReport r = analyze(R"(
    int a; lock L;
    cobegin {
      thread { lock(L); a = a + 1; unlock(L); }
      thread { lock(L); a = a + 2; unlock(L); }
    }
    print(a);
  )");
  EXPECT_EQ(r.totalFindings(), 0u);
  EXPECT_TRUE(r.raceWitnesses.empty());
}

// --- witness traces -------------------------------------------------

TEST(Csan, Figure1RaceCarriesTwoSiteWitness) {
  // Figure 1's unprotected f(a) read in T1 races with T0's locked write.
  DiagEngine diag;
  CsanReport r = analyze(workload::figure1Source(), &diag);
  ASSERT_GE(r.potentialRaces, 1u);
  ASSERT_FALSE(r.raceWitnesses.empty());

  const RaceWitness& w = r.raceWitnesses.front();
  EXPECT_TRUE(w.def.loc.valid());
  EXPECT_TRUE(w.other.loc.valid());
  EXPECT_NE(w.def.loc, w.other.loc);
  EXPECT_TRUE(w.def.isWrite);
  // Golden sites in figure1Source(): T0's `a = a + b` on line 9 races
  // with T1's unprotected `f(a)` read on line 13; the cobegin opens on
  // line 6. The write is under L; the read holds nothing.
  EXPECT_EQ(w.def.loc.line, 9u);
  EXPECT_EQ(w.other.loc.line, 13u);
  EXPECT_EQ(w.def.lockset.size(), 1u);
  EXPECT_TRUE(w.other.lockset.empty());
  // MHP justification: the top-level cobegin, distinct arms.
  EXPECT_EQ(w.cobeginLoc.line, 6u);
  EXPECT_NE(w.armA, w.armB);
}

TEST(Csan, EveryRaceWitnessHasBothSites) {
  DiagEngine diag;
  CsanReport r = analyze(R"(
    int a, b, c;
    cobegin {
      thread { a = 1; b = a + 1; c = 2; }
      thread { a = 2; c = b; }
    }
    print(a); print(b); print(c);
  )", &diag);
  EXPECT_GE(r.potentialRaces, 3u);
  EXPECT_EQ(r.raceWitnesses.size(), r.potentialRaces);
  for (const RaceWitness& w : r.raceWitnesses) {
    EXPECT_TRUE(w.def.loc.valid());
    EXPECT_TRUE(w.other.loc.valid());
    EXPECT_TRUE(w.cobeginLoc.valid());
  }
  // Each PotentialDataRace diagnostic carries the witness as notes:
  // both sites plus the MHP justification.
  for (const Diagnostic& d : diag.diagnostics())
    if (d.code == DiagCode::PotentialDataRace) {
      EXPECT_GE(d.notes.size(), 3u) << d.str();
      EXPECT_TRUE(d.loc.valid()) << d.str();
    }
}

// --- subsumption of the original checks ------------------------------

TEST(Csan, SubsumesOriginalRaceAndDeadlockChecks) {
  const char* programs[] = {
      workload::figure1Source(),
      workload::figure2Source(),
      "int a; cobegin { thread { a = 1; } thread { a = 2; } } print(a);",
      "int a; lock L1, L2; cobegin {"
      "  thread { lock(L1); a = 1; unlock(L1); }"
      "  thread { lock(L2); a = 2; unlock(L2); } } print(a);",
      "int a; lock L, M; cobegin {"
      "  thread { lock(L); lock(M); a = 1; unlock(M); unlock(L); }"
      "  thread { lock(M); lock(L); a = 2; unlock(L); unlock(M); } }",
  };
  for (const char* src : programs) {
    ir::Program p = parser::parseOrDie(src);
    driver::Compilation c = driver::analyze(p, {.warnings = false});
    DiagEngine oldDiag;
    const mutex::RaceReport oldRaces =
        mutex::detectRaces(c.graph(), c.mhp(), c.mutexes(), oldDiag);
    const mutex::DeadlockReport oldDl =
        mutex::detectDeadlocks(c.graph(), c.mhp(), c.mutexes(), oldDiag);

    DiagEngine diag;
    const CsanReport r = runCsan(c, diag);
    // Race granularity differs (site pairs vs variables), so >=; the
    // deadlock detector is delegated, so counts match exactly.
    EXPECT_GE(r.potentialRaces, oldRaces.potentialRaces) << src;
    EXPECT_EQ(r.inconsistentLocking, oldRaces.inconsistentLocking) << src;
    EXPECT_EQ(r.deadlocks.abbaPairs, oldDl.abbaPairs) << src;
    EXPECT_EQ(r.deadlocks.orderCycles, oldDl.orderCycles) << src;
  }
}

// --- lock lifecycle ---------------------------------------------------

TEST(Csan, SelfDeadlockOnReacquisition) {
  DiagEngine diag;
  CsanReport r = analyze(R"(
    int a; lock L;
    cobegin {
      thread { lock(L); lock(L); a = 1; unlock(L); unlock(L); }
      thread { a = a; }
    }
  )", &diag);
  EXPECT_EQ(r.selfDeadlocks, 1u);
  EXPECT_EQ(diag.countOf(DiagCode::SelfDeadlock), 1u);
  for (const Diagnostic& d : diag.diagnostics())
    if (d.code == DiagCode::SelfDeadlock) {
      EXPECT_TRUE(d.loc.valid());
      ASSERT_EQ(d.notes.size(), 1u);  // the first acquisition
      EXPECT_TRUE(d.notes[0].loc.valid());
    }
}

TEST(Csan, NoSelfDeadlockAfterRelease) {
  CsanReport r = analyze(R"(
    int a; lock L;
    cobegin {
      thread { lock(L); a = 1; unlock(L); lock(L); a = 2; unlock(L); }
      thread { lock(L); a = 3; unlock(L); }
    }
  )");
  EXPECT_EQ(r.selfDeadlocks, 0u);
}

TEST(Csan, LockLeakOnMissingUnlock) {
  DiagEngine diag;
  CsanReport r = analyze(R"(
    int a; lock L;
    cobegin {
      thread { lock(L); a = 1; }
      thread { a = 2; }
    }
    print(a);
  )", &diag);
  EXPECT_EQ(r.lockLeaks, 1u);
  EXPECT_EQ(diag.countOf(DiagCode::LockLeak), 1u);
}

TEST(Csan, BranchLeakingOnePathIsReported) {
  CsanReport r = analyze(R"(
    int a, c; lock L;
    cobegin {
      thread {
        lock(L);
        a = 1;
        if (c) { unlock(L); }
      }
      thread { a = 2; }
    }
  )");
  EXPECT_EQ(r.lockLeaks, 1u);
}

TEST(Csan, WellFormedBodiesDoNotLeak) {
  CsanReport r = analyze(R"(
    int a; lock L, M;
    cobegin {
      thread { lock(L); a = a + 1; unlock(L); }
      thread { lock(M); a = a + 2; unlock(M); }
    }
  )");
  EXPECT_EQ(r.lockLeaks, 0u);
  EXPECT_EQ(r.selfDeadlocks, 0u);
}

// --- mutex-body lints -------------------------------------------------

TEST(Csan, EmptyMutexBody) {
  DiagEngine diag;
  CsanReport r = analyze(R"(
    int a; lock L;
    cobegin {
      thread { lock(L); unlock(L); a = 1; }
      thread { a = 2; }
    }
  )", &diag);
  EXPECT_EQ(r.emptyBodies, 1u);
  EXPECT_EQ(diag.countOf(DiagCode::EmptyMutexBody), 1u);
}

TEST(Csan, RedundantMutexBody) {
  // p is only ever touched by one thread: the lock serializes nothing.
  CsanReport r = analyze(R"(
    int a, p; lock L;
    cobegin {
      thread { lock(L); p = 5; unlock(L); }
      thread { a = 2; }
    }
    print(p);
  )");
  EXPECT_EQ(r.redundantBodies, 1u);
  EXPECT_EQ(r.emptyBodies, 0u);
}

TEST(Csan, OverwideMutexBody) {
  // The p/q updates are lock independent; only the a update needs L.
  DiagEngine diag;
  CsanReport r = analyze(R"(
    int a, p, q; lock L;
    cobegin {
      thread { lock(L); p = 1; a = a + 1; q = 2; unlock(L); }
      thread { lock(L); a = a + 2; unlock(L); }
    }
    print(a); print(p); print(q);
  )", &diag);
  EXPECT_EQ(r.overwideBodies, 1u);
  EXPECT_EQ(diag.countOf(DiagCode::OverwideMutexBody), 1u);
}

TEST(Csan, TightBodyIsNotOverwide) {
  CsanReport r = analyze(R"(
    int a; lock L;
    cobegin {
      thread { lock(L); a = a + 1; unlock(L); }
      thread { lock(L); a = a + 2; unlock(L); }
    }
  )");
  EXPECT_EQ(r.overwideBodies, 0u);
  EXPECT_EQ(r.redundantBodies, 0u);
}

// --- unprotected pi reads --------------------------------------------

TEST(Csan, UnprotectedPiReadOnFigure1) {
  // f(a) in T1 reads `a` with no lock while T0's write under L survives
  // into the pi's conflict arguments.
  DiagEngine diag;
  CsanReport r = analyze(workload::figure1Source(), &diag);
  EXPECT_GE(r.unprotectedPiReads, 1u);
  for (const Diagnostic& d : diag.diagnostics())
    if (d.code == DiagCode::UnprotectedPiRead) {
      EXPECT_TRUE(d.loc.valid()) << d.str();
      EXPECT_GE(d.notes.size(), 1u) << d.str();
    }
}

TEST(Csan, FullyLockedUsesHaveNoUnprotectedPiReads) {
  CsanReport r = analyze(R"(
    int a; lock L;
    cobegin {
      thread { lock(L); a = a + 1; unlock(L); }
      thread { lock(L); a = a + 2; unlock(L); }
    }
    print(a);
  )");
  EXPECT_EQ(r.unprotectedPiReads, 0u);
}

// --- diagnostics hygiene (every csan warning is anchored) -------------

TEST(Csan, AllDiagnosticsHaveValidLocations) {
  const char* programs[] = {
      workload::figure1Source(),
      workload::figure2Source(),
      "int a; lock L; cobegin {"
      "  thread { lock(L); lock(L); a = 1; unlock(L); unlock(L); }"
      "  thread { lock(L); a = 2; } }",
  };
  for (const char* src : programs) {
    DiagEngine diag;
    analyze(src, &diag);
    for (const Diagnostic& d : diag.diagnostics())
      EXPECT_TRUE(d.loc.valid()) << d.str();
  }
}

TEST(Csan, OptionsGateCheckFamilies) {
  const char* src = R"(
    int a; lock L;
    cobegin {
      thread { lock(L); lock(L); a = 1; }
      thread { a = 2; }
    }
  )";
  CsanOptions off;
  off.races = off.deadlocks = off.lockLifecycle = false;
  off.bodyLints = off.piReads = false;
  DiagEngine diag;
  CsanReport r = analyze(src, &diag, off);
  EXPECT_EQ(r.totalFindings(), 0u);
  EXPECT_TRUE(diag.diagnostics().empty());
}

// --- dynamic cross-validation ----------------------------------------

TEST(Csan, StaticRacesConfirmedByExplorer) {
  const char* src = R"(
    int a, b;
    cobegin {
      thread { a = 1; b = 2; }
      thread { a = 2; print(b); }
    }
    print(a);
  )";
  ir::Program p = parser::parseOrDie(src);
  driver::Compilation c = driver::analyze(p, {.warnings = false});
  DiagEngine diag;
  const CsanReport stat = runCsan(c, diag);
  ASSERT_GE(stat.racedVars.size(), 2u);

  const interp::ExploreResult dyn =
      interp::exploreAllSchedules(p, {.detectRaces = true});
  ASSERT_TRUE(dyn.complete);
  // Every statically raced variable has a concrete racing schedule, and
  // the explorer saw no race csan missed.
  EXPECT_EQ(stat.racedVars, dyn.racedVars);
}

TEST(Csan, LockedProgramRefutedByExplorer) {
  const char* src = R"(
    int a; lock L;
    cobegin {
      thread { lock(L); a = a + 1; unlock(L); }
      thread { lock(L); a = a + 2; unlock(L); }
    }
    print(a);
  )";
  ir::Program p = parser::parseOrDie(src);
  driver::Compilation c = driver::analyze(p, {.warnings = false});
  DiagEngine diag;
  const CsanReport stat = runCsan(c, diag);
  EXPECT_TRUE(stat.racedVars.empty());

  const interp::ExploreResult dyn =
      interp::exploreAllSchedules(p, {.detectRaces = true});
  ASSERT_TRUE(dyn.complete);
  EXPECT_FALSE(dyn.anyRace());
}

}  // namespace
}  // namespace cssame::sanalysis
