// Unit tests for sequential SSA construction with FUD chains: φ
// placement, renaming, coend pruning, and the structural verifier.
#include <gtest/gtest.h>

#include "src/driver/pipeline.h"
#include "src/parser/parser.h"
#include "src/pfg/build.h"
#include "src/ssa/ssa.h"

namespace cssame::ssa {
namespace {

struct Fixture {
  ir::Program prog;
  pfg::Graph graph;
  analysis::Dominators dom;
  SsaForm form;

  explicit Fixture(const char* src)
      : prog(parser::parseOrDie(src)),
        graph(pfg::buildPfg(prog)),
        dom(graph, analysis::Dominators::Direction::Forward),
        form(buildSequentialSsa(graph, dom)) {}

  /// The SSA definition feeding the FIRST VarRef of `var` inside the
  /// statement assigning constant `tag` to some variable.
  SsaNameId useIn(long long tag, const std::string& var) {
    SsaNameId result;
    ir::forEachStmt(prog.body, [&](const ir::Stmt& s) {
      if (s.kind != ir::StmtKind::Assign && s.kind != ir::StmtKind::Print)
        return;
      bool tagged = false;
      ir::forEachExpr(*s.expr, [&](const ir::Expr& e) {
        if (e.kind == ir::ExprKind::IntConst && e.intValue == tag)
          tagged = true;
      });
      if (!tagged) return;
      ir::forEachExpr(*s.expr, [&](const ir::Expr& e) {
        if (e.kind == ir::ExprKind::VarRef && !result.valid() &&
            prog.symbols.nameOf(e.var) == var)
          result = form.useDef.at(&e);
      });
    });
    return result;
  }
};

TEST(Ssa, StraightLineChains) {
  Fixture f(R"(
    int a, b;
    a = 1;
    b = a + 100;
    a = 2;
    b = a + 200;
  )");
  // The use in "b = a + 100" must see the def from "a = 1".
  const SsaNameId u1 = f.useIn(100, "a");
  ASSERT_TRUE(u1.valid());
  EXPECT_EQ(f.form.def(u1).kind, DefKind::Assign);
  EXPECT_EQ(f.form.def(u1).stmt->expr->intValue, 1);
  const SsaNameId u2 = f.useIn(200, "a");
  EXPECT_EQ(f.form.def(u2).stmt->expr->intValue, 2);
  EXPECT_TRUE(f.form.verify(f.graph).empty());
}

TEST(Ssa, UseBeforeDefSeesEntry) {
  Fixture f("int a, b; b = a + 100;");
  const SsaNameId u = f.useIn(100, "a");
  ASSERT_TRUE(u.valid());
  EXPECT_EQ(f.form.def(u).kind, DefKind::Entry);
}

TEST(Ssa, RhsResolvedBeforeLhsPush) {
  Fixture f("int a; a = 1; a = a + 100;");
  // In a = a + 100, the rhs `a` is the PREVIOUS def.
  const SsaNameId u = f.useIn(100, "a");
  EXPECT_EQ(f.form.def(u).stmt->expr->intValue, 1);
}

TEST(Ssa, PhiAtIfJoin) {
  Fixture f(R"(
    int a, b;
    if (b > 0) { a = 1; } else { a = 2; }
    b = a + 100;
  )");
  const SsaNameId u = f.useIn(100, "a");
  ASSERT_TRUE(u.valid());
  const Definition& d = f.form.def(u);
  EXPECT_EQ(d.kind, DefKind::Phi);
  ASSERT_EQ(d.phiArgs.size(), 2u);
  // Both args are the real defs 1 and 2.
  std::vector<long long> vals;
  for (const PhiArg& a : d.phiArgs)
    vals.push_back(f.form.def(a.def).stmt->expr->intValue);
  std::sort(vals.begin(), vals.end());
  EXPECT_EQ(vals, (std::vector<long long>{1, 2}));
}

TEST(Ssa, PhiMergesEntryOnHalfDiamond) {
  Fixture f(R"(
    int a, b;
    if (b > 0) { a = 1; }
    b = a + 100;
  )");
  const SsaNameId u = f.useIn(100, "a");
  const Definition& d = f.form.def(u);
  ASSERT_EQ(d.kind, DefKind::Phi);
  ASSERT_EQ(d.phiArgs.size(), 2u);
  std::vector<DefKind> kinds;
  for (const PhiArg& a : d.phiArgs) kinds.push_back(f.form.def(a.def).kind);
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), DefKind::Entry),
            kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), DefKind::Assign),
            kinds.end());
}

TEST(Ssa, LoopPhiAtHeader) {
  Fixture f(R"(
    int i;
    i = 0;
    while (i < 5) { i = i + 100; }
    print(i + 200);
  )");
  // The condition use of i sees a φ merging init and back edge.
  const SsaNameId inLoop = f.useIn(100, "i");
  ASSERT_TRUE(inLoop.valid());
  EXPECT_EQ(f.form.def(inLoop).kind, DefKind::Phi);
  const SsaNameId after = f.useIn(200, "i");
  EXPECT_EQ(f.form.def(after).kind, DefKind::Phi);
  EXPECT_TRUE(f.form.verify(f.graph).empty());
}

TEST(Ssa, VersionsAreUniquePerVariable) {
  Fixture f(R"(
    int a;
    a = 1;
    if (a > 0) { a = 2; } else { a = 3; }
    while (a < 9) { a = a + 1; }
  )");
  std::map<std::pair<SymbolId, std::uint32_t>, int> seen;
  for (const Definition& d : f.form.defs) ++seen[{d.var, d.version}];
  for (const auto& [key, count] : seen) EXPECT_EQ(count, 1);
}

TEST(SsaCoend, SingleDefiningThreadFoldsPhi) {
  Fixture f(R"(
    int a, b;
    a = 1;
    cobegin {
      thread { a = 2; }
      thread { b = 3; }
    }
    print(a + 100);
  )");
  // Only T0 defines a: the coend φ is pruned to a copy and folded — the
  // use after the cobegin sees T0's def directly (shared memory: T0
  // definitely executed).
  const SsaNameId u = f.useIn(100, "a");
  ASSERT_TRUE(u.valid());
  const Definition& d = f.form.def(u);
  EXPECT_EQ(d.kind, DefKind::Assign);
  EXPECT_EQ(d.stmt->expr->intValue, 2);
}

TEST(SsaCoend, TwoDefiningThreadsKeepPhi) {
  Fixture f(R"(
    int a;
    a = 1;
    cobegin {
      thread { a = 2; }
      thread { a = 3; }
    }
    print(a + 100);
  )");
  const SsaNameId u = f.useIn(100, "a");
  const Definition& d = f.form.def(u);
  ASSERT_EQ(d.kind, DefKind::Phi);
  // Exactly the two thread-final defs; the pre-cobegin a=1 is pruned.
  ASSERT_EQ(d.phiArgs.size(), 2u);
  std::vector<long long> vals;
  for (const PhiArg& a : d.phiArgs)
    vals.push_back(f.form.def(a.def).stmt->expr->intValue);
  std::sort(vals.begin(), vals.end());
  EXPECT_EQ(vals, (std::vector<long long>{2, 3}));
}

TEST(SsaCoend, ConditionalThreadDefKeepsMergedPhi) {
  Fixture f(R"(
    int a, c;
    a = 1;
    cobegin {
      thread { if (c > 0) { a = 2; } }
      thread { c = 3; }
    }
    print(a + 100);
  )");
  // T0 defines a conditionally: the thread-exit def is a φ(a=2, a=1)
  // which survives the fold as the single coend argument.
  const SsaNameId u = f.useIn(100, "a");
  const Definition& d = f.form.def(u);
  EXPECT_EQ(d.kind, DefKind::Phi);
}

TEST(Ssa, EntryDefsForAllVariables) {
  Fixture f("int a, b, c; a = 1;");
  for (const ir::Symbol& sym : f.prog.symbols.all()) {
    if (sym.kind != ir::SymbolKind::Var) continue;
    const SsaNameId e = f.form.entryDef[sym.id.index()];
    ASSERT_TRUE(e.valid());
    EXPECT_EQ(f.form.def(e).kind, DefKind::Entry);
  }
}

TEST(Ssa, AssignDefsRecorded) {
  Fixture f("int a; a = 1; a = 2;");
  std::size_t count = 0;
  ir::forEachStmt(f.prog.body, [&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::Assign) {
      EXPECT_TRUE(f.form.assignDef.contains(&s));
      ++count;
    }
  });
  EXPECT_EQ(count, 2u);
}

TEST(Ssa, VerifyCatchesDanglingUse) {
  Fixture f("int a; a = 1; print(a);");
  // Sabotage: drop one use-def link.
  ASSERT_FALSE(f.form.useDef.empty());
  f.form.useDef.erase(f.form.useDef.begin());
  EXPECT_FALSE(f.form.verify(f.graph).empty());
}

}  // namespace
}  // namespace cssame::ssa
