// Explorer-backed refinement properties: for randomly generated SMALL
// racy programs, the optimizer must never introduce a behavior — the set
// of possible outputs after optimization is a subset of the set before.
// This is the strongest correctness statement the library can check
// mechanically, and it covers racy programs that the seeded-interpreter
// property suite (which needs determinate outputs) cannot.
#include <gtest/gtest.h>

#include <random>

#include "src/interp/explore.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"
#include "src/opt/optimize.h"
#include "src/parser/parser.h"

namespace cssame {
namespace {

/// Tiny adversarial programs: 2 threads, a few statements each, shared
/// variables with mixed locked/unlocked access, straight-line only (so
/// exhaustive exploration stays cheap).
ir::Program makeSmallRacy(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto intIn = [&](long long lo, long long hi) {
    return std::uniform_int_distribution<long long>(lo, hi)(rng);
  };
  auto chance = [&](double p) {
    return std::uniform_real_distribution<double>(0, 1)(rng) < p;
  };

  ir::ProgramBuilder b;
  const SymbolId u = b.var("u");
  const SymbolId v = b.var("v");
  const SymbolId w = b.var("w");
  const SymbolId L = b.lock("L");
  const std::vector<SymbolId> vars{u, v, w};
  auto pick = [&] { return vars[static_cast<std::size_t>(intIn(0, 2))]; };

  b.assign(u, b.lit(intIn(0, 3)));
  b.assign(v, b.lit(intIn(0, 3)));

  auto emitThread = [&](int stmts) {
    for (int i = 0; i < stmts; ++i) {
      const bool locked = chance(0.5);
      if (locked) b.lockStmt(L);
      switch (intIn(0, 3)) {
        case 0:
          b.assign(pick(), b.lit(intIn(0, 9)));
          break;
        case 1:
          b.assign(pick(), b.add(b.ref(pick()), b.lit(intIn(1, 3))));
          break;
        case 2:
          b.assign(pick(), b.ref(pick()));
          break;
        default:
          b.if_(b.gt(b.ref(pick()), b.lit(intIn(0, 4))),
                [&] { b.assign(pick(), b.lit(intIn(0, 9))); });
          break;
      }
      if (locked) b.unlockStmt(L);
    }
  };

  b.cobegin({[&] { emitThread(static_cast<int>(intIn(2, 4))); },
             [&] { emitThread(static_cast<int>(intIn(2, 4))); }});
  b.print(b.ref(u));
  b.print(b.ref(v));
  b.print(b.ref(w));
  return b.take();
}

class RefinementProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RefinementProperty, OptimizerNeverAddsBehaviors) {
  // Build the same program twice (the generator is deterministic).
  ir::Program original = makeSmallRacy(GetParam());
  ir::Program optimized = makeSmallRacy(GetParam());

  interp::ExploreResult before = interp::exploreAllSchedules(original);
  ASSERT_TRUE(before.complete) << ir::printProgram(original);
  ASSERT_FALSE(before.outputs.empty());

  opt::OptimizeReport report = opt::optimizeProgram(optimized);
  (void)report;
  interp::ExploreResult after = interp::exploreAllSchedules(optimized);
  ASSERT_TRUE(after.complete);
  ASSERT_FALSE(after.outputs.empty());

  for (const auto& out : after.outputs) {
    EXPECT_TRUE(before.outputs.contains(out))
        << "new behavior introduced by optimization on seed " << GetParam()
        << "\n--- original ---\n"
        << ir::printProgram(original) << "\n--- optimized ---\n"
        << ir::printProgram(optimized);
  }
  EXPECT_EQ(before.anyDeadlock, after.anyDeadlock);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefinementProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace cssame
