// End-to-end checks of the paper's optimization figures (4, 5a, 5b):
// constant propagation, parallel dead code elimination, and lock
// independent code motion on the Figure 2 program, with semantics
// validated by the interleaving interpreter across many scheduler seeds.
#include <gtest/gtest.h>

#include "src/interp/interp.h"
#include "src/ir/printer.h"
#include "src/ir/verify.h"
#include "src/opt/optimize.h"

namespace cssame {
namespace {

const char* kFigure2 = R"(
int a, b, x, y;
lock L;
a = 0;
b = 0;
cobegin {
  thread T0 {
    lock(L);
    a = 5;
    b = a + 3;
    if (b > 4) { a = a + b; }
    x = a;
    unlock(L);
  }
  thread T1 {
    lock(L);
    a = b + 6;
    y = a;
    unlock(L);
  }
}
print(x);
print(y);
)";

// Outputs of Figure 2: x is always 13 (T0's locked region is atomic).
// y depends on the interleaving: T1 before T0 reads b = 0 → y = 6;
// T1 after T0 reads b = 8 → y = 14.
void expectFigure2Outputs(const ir::Program& prog, const char* what) {
  for (const interp::RunResult& r : interp::runManySeeds(prog, 25)) {
    ASSERT_TRUE(r.completed) << what;
    ASSERT_FALSE(r.deadlocked) << what;
    ASSERT_FALSE(r.lockError) << what;
    ASSERT_EQ(r.output.size(), 2u) << what;
    EXPECT_EQ(r.output[0], 13) << what;
    EXPECT_TRUE(r.output[1] == 6 || r.output[1] == 14)
        << what << " y=" << r.output[1];
  }
}

TEST(Figure4, ConstantPropagationWithCssame) {
  ir::Program prog = parser::parseOrDie(kFigure2);
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  opt::ConstPropStats stats = opt::propagateConstants(c);

  // Figure 4b: inside T0 everything folds — a1=5, b1=8, a2=13, x0=13 are
  // constant assignments; the branch b1 > 4 resolves to taken.
  EXPECT_GE(stats.constantDefs, 4u) << ir::printProgram(prog);
  EXPECT_EQ(stats.branchesResolved, 1u);
  EXPECT_TRUE(ir::verify(prog).empty());

  // x = 13 must appear literally; T1's a = b + 6 must NOT fold (the π on
  // b legitimately merges b0 = 0 and b1 = 8).
  const std::string text = ir::printProgram(prog);
  EXPECT_NE(text.find("x = 13"), std::string::npos) << text;
  EXPECT_NE(text.find("a = b + 6"), std::string::npos) << text;

  expectFigure2Outputs(prog, "after CSCC");
}

TEST(Figure4, ConstantPropagationWithPlainCssaFindsNothingInT0) {
  ir::Program prog = parser::parseOrDie(kFigure2);
  driver::Compilation c =
      driver::analyze(prog, {.enableCssame = false, .warnings = false});
  opt::ConstPropStats stats = opt::analyzeConstants(c);
  // Figure 4a: only the top-level a=0 / b=0 and the trivial a=5 stay
  // constant; nothing downstream of a π folds, so no branch resolves and
  // (in particular) x never becomes a known constant.
  EXPECT_EQ(stats.branchesResolved, 0u);
  EXPECT_LE(stats.constantDefs, 3u);

  ir::Program prog2 = parser::parseOrDie(kFigure2);
  driver::Compilation c2 =
      driver::analyze(prog2, {.enableCssame = false, .warnings = false});
  opt::ConstPropStats applied = opt::propagateConstants(c2);
  const std::string text = ir::printProgram(prog2);
  EXPECT_EQ(text.find("x = 13"), std::string::npos) << text;
  (void)applied;
  expectFigure2Outputs(prog2, "after CSCC/CSSA");
}

TEST(Figure5a, ParallelDeadCodeElimination) {
  ir::Program prog = parser::parseOrDie(kFigure2);
  {
    driver::Compilation c = driver::analyze(prog, {.warnings = false});
    opt::propagateConstants(c);
  }
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  opt::DceStats stats = opt::eliminateDeadCode(c);

  // Figure 5a: all assignments to `a` in T0 are dead (a=5, a=13 — the
  // a=a+b chain collapsed during CSCC), plus the top-level a=0; `b = 8`
  // stays because T1 reads b through the π. Our CSCC is one step stronger
  // than the paper's Figure 4b: x0=13 also propagates into print(x), so
  // the x=13 store is dead too and gets removed here (the paper keeps it
  // and lets LICM move it — see Figure5b.PaperInput below).
  EXPECT_GE(stats.stmtsRemoved, 3u) << ir::printProgram(prog);
  EXPECT_EQ(stats.cobeginsSerialized, 0u);

  const std::string text = ir::printProgram(prog);
  EXPECT_NE(text.find("b = 8"), std::string::npos) << text;
  EXPECT_NE(text.find("print(13)"), std::string::npos) << text;
  EXPECT_EQ(text.find("a = 5"), std::string::npos) << text;
  EXPECT_EQ(text.find("x ="), std::string::npos) << text;
  EXPECT_TRUE(ir::verify(prog).empty());

  expectFigure2Outputs(prog, "after PDCE");
}

TEST(Figure5b, LockIndependentCodeMotion) {
  ir::Program prog = parser::parseOrDie(kFigure2);
  {
    driver::Compilation c = driver::analyze(prog, {.warnings = false});
    opt::propagateConstants(c);
  }
  {
    driver::Compilation c = driver::analyze(prog, {.warnings = false});
    opt::eliminateDeadCode(c);
  }
  const std::uint64_t holdBefore =
      interp::run(prog, {.seed = 7}).totalHoldSteps();

  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  opt::LicmStats stats = opt::moveLockIndependentCode(c);

  // After our (stronger) CSCC+PDCE, T0's body holds only the conflicting
  // b = 8; T1's y = a sinks to the post-mutex node as in Figure 5b.
  EXPECT_EQ(stats.sunk, 1u) << ir::printProgram(prog);
  EXPECT_EQ(stats.bodiesRemoved, 0u);
  EXPECT_TRUE(ir::verify(prog).empty());

  const std::uint64_t holdAfter =
      interp::run(prog, {.seed = 7}).totalHoldSteps();
  EXPECT_LT(holdAfter, holdBefore);

  expectFigure2Outputs(prog, "after LICM");
}

TEST(Figure5b, PaperInput) {
  // LICM applied to the *literal* Figure 5a program, exactly as printed
  // in the paper: x = 13 (T0) and y = a (T1) both move to the post-mutex
  // nodes; b = 8 and a = b + 6 must stay locked.
  ir::Program prog = parser::parseOrDie(R"(
    int a, b, x, y;
    lock L;
    b = 0;
    cobegin {
      thread T0 {
        lock(L);
        b = 8;
        x = 13;
        unlock(L);
      }
      thread T1 {
        lock(L);
        a = b + 6;
        y = a;
        unlock(L);
      }
    }
    print(x);
    print(y);
  )");
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  opt::LicmStats stats = opt::moveLockIndependentCode(c);
  EXPECT_EQ(stats.sunk, 2u) << ir::printProgram(prog);
  EXPECT_EQ(stats.hoisted, 0u);
  EXPECT_EQ(stats.bodiesRemoved, 0u);

  // Figure 5b's exact shape: the stores appear right after each unlock.
  const std::string text = ir::printProgram(prog);
  EXPECT_NE(text.find("unlock(L);\n    x = 13;"), std::string::npos) << text;
  EXPECT_NE(text.find("unlock(L);\n    y = a;"), std::string::npos) << text;
  expectFigure2Outputs(prog, "LICM on the paper's Figure 5a");
}

TEST(FullPipeline, Figure2EndToEnd) {
  ir::Program prog = parser::parseOrDie(kFigure2);
  opt::OptimizeReport report = opt::optimizeProgram(prog);
  EXPECT_GE(report.deadCode.stmtsRemoved, 3u);
  EXPECT_GE(report.lockMotion.sunk, 1u);
  EXPECT_TRUE(ir::verify(prog).empty());
  expectFigure2Outputs(prog, "full pipeline");
}

TEST(FullPipeline, CssaAblationKeepsLockBodiesFat) {
  // With CSSAME disabled the pipeline must still be correct, just weaker.
  ir::Program prog = parser::parseOrDie(kFigure2);
  opt::OptimizeReport report =
      opt::optimizeProgram(prog, {.cssame = false});
  EXPECT_TRUE(ir::verify(prog).empty());
  expectFigure2Outputs(prog, "full pipeline (CSSA only)");
  (void)report;
}

}  // namespace
}  // namespace cssame
