// Tests for the concurrent points-to analysis and the alias-class keying
// it feeds: PtSet lattice laws, per-site precision, the π-driven
// concurrency refinement, a dynamic soundness sweep against exhaustive
// schedule exploration, and the scalar transcription guarantee (an
// explicitly installed identity partition reproduces the identity fast
// path bit for bit).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/analysis/concurrency.h"
#include "src/analysis/dominance.h"
#include "src/cssa/cssa.h"
#include "src/cssa/form_printer.h"
#include "src/cssa/rewrite.h"
#include "src/driver/pipeline.h"
#include "src/interp/explore.h"
#include "src/mutex/mutex_structures.h"
#include "src/parser/parser.h"
#include "src/pfg/graph.h"
#include "src/sanalysis/csan.h"
#include "src/sanalysis/pointsto.h"
#include "src/ssa/ssa.h"
#include "src/workload/generator.h"
#include "src/workload/paper_programs.h"

namespace cssame::sanalysis {
namespace {

PtSet pts(std::initializer_list<SymbolId> locs) {
  PtSet s;
  s.locs = locs;
  return s;
}

SymbolId sym(std::uint32_t i) {
  return SymbolId{static_cast<SymbolId::value_type>(i)};
}

// --- PtSet lattice ---------------------------------------------------

TEST(PtSetLattice, JoinGrowsMonotonically) {
  PtSet a = pts({sym(1)});
  EXPECT_TRUE(a.join(pts({sym(2)})));
  EXPECT_EQ(a, pts({sym(1), sym(2)}));
  EXPECT_FALSE(a.join(pts({sym(1)})));  // no growth
  EXPECT_TRUE(a.join(PtSet::any()));
  EXPECT_TRUE(a.anywhere);
  EXPECT_FALSE(a.join(pts({sym(3)})));  // ⊤ absorbs everything
}

TEST(PtSetLattice, EmptyIsBottom) {
  PtSet n;  // ∅ = "exactly null"
  EXPECT_TRUE(n.empty());
  EXPECT_FALSE(n.join(PtSet{}));
  EXPECT_TRUE(n.join(pts({sym(4)})));
  EXPECT_EQ(n, pts({sym(4)}));
}

TEST(PtSetLattice, MeetIntersectsWithTopIdentity) {
  PtSet a = pts({sym(1), sym(2)});
  a.meet(PtSet::any());  // ⊤ is the meet identity
  EXPECT_EQ(a, pts({sym(1), sym(2)}));

  PtSet t = PtSet::any();
  t.meet(pts({sym(2)}));  // meet with ⊤ on the left adopts the other side
  EXPECT_EQ(t, pts({sym(2)}));

  PtSet b = pts({sym(1), sym(2), sym(3)});
  b.meet(pts({sym(2), sym(3), sym(4)}));
  EXPECT_EQ(b, pts({sym(2), sym(3)}));

  PtSet c = pts({sym(1)});
  c.meet(pts({sym(2)}));
  EXPECT_TRUE(c.empty());
}

// --- pipeline integration --------------------------------------------

driver::Compilation analyzeSrc(const char* src, ir::Program& storage) {
  storage = parser::parseOrDie(src);
  return driver::analyze(storage, {.warnings = false});
}

TEST(PointsTo, ScalarProgramTakesFastPath) {
  ir::Program p;
  driver::Compilation c = analyzeSrc(R"(
    int a, b; lock L;
    cobegin {
      thread T0 { lock(L); a = a + 1; unlock(L); }
      thread T1 { lock(L); b = a; unlock(L); }
    }
    print(a); print(b);
  )", p);
  EXPECT_EQ(c.pointsTo(), nullptr);
  EXPECT_TRUE(c.graph().aliases.identity());
}

TEST(PointsTo, ArrayOnlyProgramNeedsNoSolve) {
  // `a[i]` names its array syntactically: no deref, no points-to solve,
  // and the identity partition already keys both accesses to `a`.
  ir::Program p;
  driver::Compilation c = analyzeSrc(R"(
    int a[4]; int i, j;
    i = 0; j = 1;
    cobegin {
      thread T0 { a[i] = 1; }
      thread T1 { a[j] = 2; }
    }
    print(a[0]);
  )", p);
  EXPECT_EQ(c.pointsTo(), nullptr);
  EXPECT_TRUE(c.graph().aliases.identity());
  const SymbolId a = p.symbols.lookup("a");
  ASSERT_TRUE(a.valid());
  EXPECT_EQ(c.graph().aliases.repOf(a), a);
}

TEST(PointsTo, SingleTargetDerefIsExact) {
  ir::Program p;
  driver::Compilation c = analyzeSrc(R"(
    int x, out, ptr;
    ptr = &x;
    *ptr = 5;
    out = *ptr;
    print(out);
  )", p);
  const PointsToResult* pt = c.pointsTo();
  ASSERT_NE(pt, nullptr);
  const SymbolId x = p.symbols.lookup("x");

  ASSERT_EQ(pt->storePts.size(), 1u);
  EXPECT_EQ(pt->storePts.begin()->second, pts({x}));
  ASSERT_EQ(pt->loadPts.size(), 1u);
  EXPECT_EQ(pt->loadPts.begin()->second, pts({x}));
  EXPECT_EQ(pt->stats.anywhereSites, 0u);
  EXPECT_TRUE(pt->stats.converged);
}

TEST(PointsTo, SparseChainsBeatFlowInsensitiveStore) {
  // p is retargeted between the two stores. A purely flow-insensitive
  // answer would say {x, y} at both; the sparse SSA chains pin each
  // store to its one live target.
  ir::Program p;
  driver::Compilation c = analyzeSrc(R"(
    int x, y, ptr;
    ptr = &x;
    *ptr = 1;
    ptr = &y;
    *ptr = 2;
    print(x); print(y);
  )", p);
  const PointsToResult* pt = c.pointsTo();
  ASSERT_NE(pt, nullptr);
  const SymbolId x = p.symbols.lookup("x");
  const SymbolId y = p.symbols.lookup("y");

  ASSERT_EQ(pt->storePts.size(), 2u);
  std::set<SymbolId> all;
  for (const auto& [stmt, set] : pt->storePts) {
    EXPECT_FALSE(set.anywhere);
    EXPECT_EQ(set.locs.size(), 1u);
    all.insert(set.locs.begin(), set.locs.end());
  }
  EXPECT_EQ(all, (std::set<SymbolId>{x, y}));
  // Precise targets keep x and y in separate alias classes.
  EXPECT_NE(c.graph().aliases.repOf(x), c.graph().aliases.repOf(y));
}

TEST(PointsTo, DisjointPointeesStaySeparateClasses) {
  ir::Program p;
  driver::Compilation c = analyzeSrc(R"(
    int x, y, ptrA, ptrB; lock m;
    ptrA = &x; ptrB = &y;
    cobegin {
      thread T0 { lock(m); *ptrA = 1; unlock(m); }
      thread T1 { lock(m); *ptrB = 2; unlock(m); }
    }
    print(x); print(y);
  )", p);
  const SymbolId x = p.symbols.lookup("x");
  const SymbolId y = p.symbols.lookup("y");
  EXPECT_NE(c.graph().aliases.repOf(x), c.graph().aliases.repOf(y));

  // Lock-protected disjoint stores: nothing for csan to report.
  DiagEngine diag;
  const CsanReport r = runCsan(c, diag);
  EXPECT_EQ(r.totalFindings(), 0u);
}

TEST(PointsTo, NullPointerDerefHasEmptySet) {
  ir::Program p;
  driver::Compilation c = analyzeSrc(R"(
    int out, ptr;
    ptr = 0;
    out = *ptr;
    print(out);
  )", p);
  const PointsToResult* pt = c.pointsTo();
  ASSERT_NE(pt, nullptr);
  ASSERT_EQ(pt->loadPts.size(), 1u);
  EXPECT_TRUE(pt->loadPts.begin()->second.empty());
  // An always-null load touches no location: its class key is invalid.
  EXPECT_FALSE(
      c.graph().aliases.derefLoadClass(pt->loadPts.begin()->first).valid());
}

TEST(PointsTo, ArbitraryIntegerPointerIsWild) {
  ir::Program p;
  driver::Compilation c = analyzeSrc(R"(
    int x, ptr;
    ptr = 7;
    *ptr = 1;
    print(x);
  )", p);
  const PointsToResult* pt = c.pointsTo();
  ASSERT_NE(pt, nullptr);
  ASSERT_EQ(pt->storePts.size(), 1u);
  EXPECT_TRUE(pt->storePts.begin()->second.anywhere);
  EXPECT_EQ(pt->stats.anywhereSites, 1u);
}

TEST(PointsTo, ConcurrentRetargetFlowsThroughPi) {
  // Thread A retargets the shared pointer while thread B stores through
  // it. The π conflict arguments placed from the MHP relation must union
  // A's new target into B's deref, so the store may touch both x and y.
  ir::Program p;
  driver::Compilation c = analyzeSrc(R"(
    int x, y, ptr; lock m;
    ptr = &x;
    cobegin {
      thread A { lock(m); ptr = &y; unlock(m); }
      thread B { lock(m); *ptr = 3; unlock(m); }
    }
    print(x); print(y);
  )", p);
  const PointsToResult* pt = c.pointsTo();
  ASSERT_NE(pt, nullptr);
  const SymbolId x = p.symbols.lookup("x");
  const SymbolId y = p.symbols.lookup("y");

  ASSERT_EQ(pt->storePts.size(), 1u);
  const PtSet& store = pt->storePts.begin()->second;
  EXPECT_FALSE(store.anywhere);
  EXPECT_TRUE(store.locs.contains(x));
  EXPECT_TRUE(store.locs.contains(y));
  // Both pointees land in one alias class: the deref site may touch
  // either, so downstream passes must treat them as one location.
  EXPECT_EQ(c.graph().aliases.repOf(x), c.graph().aliases.repOf(y));
}

TEST(PointsTo, FormatPtSet) {
  ir::Program p = parser::parseOrDie("int a, b; a = 1; b = 2; print(a);");
  const SymbolId a = p.symbols.lookup("a");
  const SymbolId b = p.symbols.lookup("b");
  EXPECT_EQ(formatPtSet(PtSet{}, p.symbols), "{}");
  EXPECT_EQ(formatPtSet(PtSet::any(), p.symbols), "{anywhere}");
  EXPECT_EQ(formatPtSet(pts({a, b}), p.symbols), "{a, b}");
}

// --- dynamic soundness sweep -----------------------------------------

/// Explores every schedule and checks that each dynamically raced cell's
/// alias class is statically reported. Returns the dynamic race count so
/// callers can assert the sweep exercised real races.
std::size_t expectNoFalseNegatives(ir::Program prog) {
  DiagEngine diag;
  driver::Compilation comp = driver::analyze(prog);
  const CsanReport report = runCsan(comp, diag);
  const ir::AliasClasses& aliases = comp.graph().aliases;

  interp::ExploreOptions opts;
  opts.detectRaces = true;
  opts.maxSteps = 1u << 17;
  opts.maxStates = 1u << 15;
  const interp::ExploreResult dyn = interp::exploreAllSchedules(prog, opts);

  for (SymbolId v : dyn.racedVars) {
    EXPECT_TRUE(report.racedVars.contains(aliases.repOf(v)))
        << "dynamic race on '" << prog.symbols.nameOf(v)
        << "' missed by the static alias engine (seed program)";
  }
  return dyn.racedVars.size();
}

TEST(PointsToSoundness, GeneratedPointerWorkloads) {
  std::size_t dynamicRaces = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    workload::GeneratorConfig cfg;
    cfg.seed = 100 + seed;
    cfg.threads = 2;
    cfg.sharedVars = 3;
    cfg.locks = 2;
    cfg.stmtsPerThread = 3;
    cfg.maxDepth = 1;
    cfg.loopProb = 0.0;
    cfg.lockedFraction = 0.25 * static_cast<double>(seed % 3);
    cfg.determinate = false;
    cfg.ptrProb = 0.5;
    dynamicRaces += expectNoFalseNegatives(workload::generateRandom(cfg));
  }
  EXPECT_GT(dynamicRaces, 0u) << "sweep never produced a racy program";
}

TEST(PointsToSoundness, GeneratedArrayWorkloads) {
  // The generator's array updates are always lock protected, so the
  // sweep's dynamic races come from the plain unlocked shared updates
  // interleaved with them; the hand-written aliased-index program below
  // guarantees the sweep sees at least one true array race.
  std::size_t dynamicRaces = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    workload::GeneratorConfig cfg;
    cfg.seed = 300 + seed;
    cfg.threads = 2;
    cfg.sharedVars = 2;
    cfg.locks = 1;
    cfg.stmtsPerThread = 5;
    cfg.maxDepth = 1;
    cfg.loopProb = 0.0;
    cfg.lockedFraction = (seed % 2) == 0 ? 0.5 : 0.0;
    cfg.determinate = false;
    cfg.arrayProb = 0.35;
    dynamicRaces += expectNoFalseNegatives(workload::generateRandom(cfg));
  }
  dynamicRaces += expectNoFalseNegatives(parser::parseOrDie(R"(
    int a[4]; int i, j;
    i = 0; j = i;
    cobegin {
      thread T0 { a[i] = 1; }
      thread T1 { a[j] = 2; }
    }
    print(a[0]);
  )"));
  EXPECT_GT(dynamicRaces, 0u) << "sweep never produced a racy program";
}

// --- scalar transcription --------------------------------------------

/// Runs the full analysis stack by hand — the same phase sequence as
/// driver::Compilation — and renders everything the class keying could
/// perturb: the printed CSSAME form plus every Ecf/Emutex/Edsync edge.
/// With `explicitIdentity` the identity partition is installed as an
/// explicit rep table, so repOf/singleton/classShared take their
/// map-backed paths instead of the rep_.empty() fast path.
std::string buildAndRender(ir::Program& prog, bool explicitIdentity) {
  pfg::Graph graph = pfg::buildPfg(prog);
  if (explicitIdentity) {
    // setPartition normalizes a fully trivial table back to the identity
    // unless a deref site is registered; pin it with a sentinel entry no
    // scalar program can ever query (there is no Deref expression).
    graph.aliases.setDerefLoad(nullptr, SymbolId{});
    std::vector<SymbolId> rep(prog.symbols.size());
    for (std::size_t i = 0; i < rep.size(); ++i)
      rep[i] = sym(static_cast<std::uint32_t>(i));
    graph.aliases.setPartition(std::move(rep), prog.symbols);
    EXPECT_FALSE(graph.aliases.identity());
  }
  analysis::Dominators dom(graph, analysis::Dominators::Direction::Forward);
  analysis::Dominators pdom(graph, analysis::Dominators::Direction::Reverse);
  analysis::Mhp mhp(graph, dom);
  const analysis::AccessSites sites = analysis::collectAccessSites(graph);
  analysis::computeSyncAndConflictEdges(graph, mhp, sites);
  mutex::MutexStructures mutexes(graph, dom, pdom, nullptr);
  ssa::SsaForm form = ssa::buildSequentialSsa(graph, dom);
  cssa::placePiTerms(graph, form, mhp, sites);
  cssa::rewritePiTerms(graph, form, mutexes);

  std::string out = cssa::printForm(graph, form);
  out += "--- edges ---\n";
  for (const pfg::ConflictEdge& e : graph.conflicts)
    out += "ecf " + std::to_string(e.from.index()) + " -> " +
           std::to_string(e.to.index()) + " var " +
           prog.symbols.nameOf(e.var) + (e.toIsDef ? " DD" : " DU") + "\n";
  for (const pfg::MutexEdge& e : graph.mutexEdges)
    out += "emutex " + std::to_string(e.lockNode.index()) + " <-> " +
           std::to_string(e.unlockNode.index()) + " lock " +
           prog.symbols.nameOf(e.lockVar) + "\n";
  for (const pfg::DsyncEdge& e : graph.dsyncEdges)
    out += "edsync " + std::to_string(e.setNode.index()) + " -> " +
           std::to_string(e.waitNode.index()) + "\n";
  return out;
}

/// The heart of the alias-class refactor's compatibility claim: on a
/// scalar-only program, class keying with an explicit identity partition
/// transcribes the original symbol-keyed construction bit for bit.
void expectTranscription(const char* src) {
  ir::Program base = parser::parseOrDie(src);
  ir::Program keyed = parser::parseOrDie(src);
  EXPECT_EQ(buildAndRender(base, false), buildAndRender(keyed, true)) << src;
}

TEST(Transcription, ScalarProgramsAreBitIdentical) {
  expectTranscription(workload::figure1Source());
  expectTranscription(workload::figure2Source());
  expectTranscription(R"(
    int a, b, c; lock L, M;
    cobegin {
      thread T0 { lock(L); a = a + 1; unlock(L); b = 2; }
      thread T1 { lock(L); a = a + 2; unlock(L); lock(M); c = a; unlock(M); }
      thread T2 { c = b + a; }
    }
    print(a); print(b); print(c);
  )");
  expectTranscription(R"(
    int x, y; lock L;
    cobegin {
      thread A {
        while (x < 3) { lock(L); x = x + 1; unlock(L); }
      }
      thread B {
        if (y) { lock(L); y = x; unlock(L); } else { y = 1; }
      }
    }
    print(x); print(y);
  )");
}

TEST(Transcription, GeneratedScalarWorkloadsAreBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    workload::GeneratorConfig cfg;
    cfg.seed = seed;
    cfg.threads = 3;
    cfg.stmtsPerThread = 8;
    cfg.determinate = (seed % 2) == 0;
    ir::Program base = workload::generateRandom(cfg);
    ir::Program keyed = workload::generateRandom(cfg);
    EXPECT_EQ(buildAndRender(base, false), buildAndRender(keyed, true))
        << "seed " << seed;
  }
}

/// End-to-end variant: the full diagnostic surface (csan) on a scalar
/// program is unchanged by the presence of the pointer machinery in the
/// pipeline — the fast path really is taken.
TEST(Transcription, CsanScalarReportsUnchanged) {
  ir::Program p;
  driver::Compilation c = analyzeSrc(workload::figure1Source(), p);
  ASSERT_EQ(c.pointsTo(), nullptr);
  DiagEngine diag;
  const CsanReport r = runCsan(c, diag);
  EXPECT_EQ(r.mayAliasRaces, 0u);  // no alias findings without pointers
  EXPECT_GE(r.potentialRaces, 1u);  // Figure 1's race still found
}

}  // namespace
}  // namespace cssame::sanalysis
