// End-to-end integration scenarios: realistic programs exercising many
// constructs at once, validated by exhaustive schedule exploration (small
// programs) or seeded interpretation (larger ones), before and after the
// full optimization pipeline.
#include <gtest/gtest.h>

#include "src/driver/pipeline.h"
#include "src/interp/explore.h"
#include "src/interp/interp.h"
#include "src/ir/printer.h"
#include "src/ir/verify.h"
#include "src/mutex/races.h"
#include "src/opt/lockstats.h"
#include "src/opt/optimize.h"
#include "src/parser/parser.h"

namespace cssame {
namespace {

void expectExactOutputsPreserved(const char* src) {
  ir::Program original = parser::parseOrDie(src);
  interp::ExploreResult before = interp::exploreAllSchedules(original);
  ASSERT_TRUE(before.complete);

  ir::Program optimized = parser::parseOrDie(src);
  opt::optimizeProgram(optimized);
  EXPECT_TRUE(ir::verify(optimized).empty());
  interp::ExploreResult after = interp::exploreAllSchedules(optimized);
  ASSERT_TRUE(after.complete);

  for (const auto& out : after.outputs)
    EXPECT_TRUE(before.outputs.contains(out)) << ir::printProgram(optimized);
  EXPECT_FALSE(after.outputs.empty());
}

TEST(Integration, StripedCounters) {
  // Two counters, two locks, threads touching both in opposite orders —
  // but never holding both at once, so no deadlock.
  expectExactOutputsPreserved(R"(
    int c0, c1; lock L0, L1;
    cobegin {
      thread {
        lock(L0); c0 = c0 + 1; unlock(L0);
        lock(L1); c1 = c1 + 1; unlock(L1);
      }
      thread {
        lock(L1); c1 = c1 + 10; unlock(L1);
        lock(L0); c0 = c0 + 10; unlock(L0);
      }
    }
    print(c0);
    print(c1);
  )");
}

TEST(Integration, HandoffChain) {
  // Three threads pass a value along a chain of events.
  expectExactOutputsPreserved(R"(
    int x; event e1, e2;
    cobegin {
      thread { x = 5; set(e1); }
      thread { wait(e1); x = x * 2; set(e2); }
      thread { wait(e2); print(x); }
    }
  )");
}

TEST(Integration, GuardedInitialization) {
  // Double-checked-ish init under a lock; the flag decides who computes.
  expectExactOutputsPreserved(R"(
    int init, value; lock L;
    cobegin {
      thread {
        lock(L);
        if (init == 0) { value = 42; init = 1; }
        unlock(L);
      }
      thread {
        lock(L);
        if (init == 0) { value = 42; init = 1; }
        unlock(L);
      }
    }
    print(value);
    print(init);
  )");
}

TEST(Integration, ReductionWithDoallAndLock) {
  // The per-iteration scaling is computed inside the lock and depends on
  // an opaque rate, so it cannot constant-fold away — motion must evict
  // it from the critical section.
  const char* src = R"(
    int sum, rate; lock L;
    rate = f(0);
    doall i = 1, 6 {
      int sq;
      lock(L);
      sq = i * i * rate;
      sum = sum + sq;
      unlock(L);
    }
    print(sum);
  )";
  ir::Program reference = parser::parseOrDie(src);
  const std::vector<long long> expected =
      interp::run(reference, {.seed = 1}).output;

  ir::Program prog = parser::parseOrDie(src);
  opt::OptimizeReport report = opt::optimizeProgram(prog);
  EXPECT_GT(report.lockMotion.sunk + report.lockMotion.hoisted +
                report.exprMotion.exprsHoisted,
            0u);
  for (const interp::RunResult& r : interp::runManySeeds(prog, 10)) {
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.output, expected);  // sum of deposits is deterministic
  }
}

TEST(Integration, BarrierJacobiStep) {
  // Two half-steps separated by barriers; deterministic by phases.
  ir::Program prog = parser::parseOrDie(R"(
    int a0, a1, b0, b1;
    a0 = 1; a1 = 3;
    cobegin {
      thread { b0 = a0 + a1; barrier; a0 = b0 + b1; }
      thread { b1 = a1 + a0; barrier; a1 = b1 + b0; }
    }
    print(a0);
    print(a1);
  )");
  interp::ExploreResult all = interp::exploreAllSchedules(prog);
  ASSERT_TRUE(all.complete);
  EXPECT_EQ(all.outputs.size(), 1u);  // phases make it deterministic
  EXPECT_EQ(*all.outputs.begin(), (std::vector<long long>{8, 8}));

  opt::optimizeProgram(prog);
  interp::ExploreResult after = interp::exploreAllSchedules(prog);
  EXPECT_EQ(after.outputs, all.outputs);
}

TEST(Integration, WhileLoopWithLockedBody) {
  ir::Program prog = parser::parseOrDie(R"(
    int total; lock L;
    cobegin {
      thread {
        int i; i = 0;
        while (i < 8) {
          lock(L); total = total + 2; unlock(L);
          i = i + 1;
        }
      }
      thread {
        int j; j = 0;
        while (j < 8) {
          lock(L); total = total + 3; unlock(L);
          j = j + 1;
        }
      }
    }
    print(total);
  )");
  {
    driver::Compilation c = driver::analyze(prog, {.warnings = false});
    // Lock/unlock inside a loop still form a well-formed body.
    std::size_t wellFormed = 0;
    for (const auto& b : c.mutexes().bodies()) wellFormed += b.wellFormed;
    EXPECT_EQ(wellFormed, 2u);
    EXPECT_EQ(c.diag().countOf(DiagCode::UnmatchedLock), 0u);
  }
  opt::optimizeProgram(prog);
  for (const interp::RunResult& r : interp::runManySeeds(prog, 10)) {
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.output, (std::vector<long long>{40}));
  }
}

TEST(Integration, DiagnosticsOnMessyProgram) {
  ir::Program prog = parser::parseOrDie(R"(
    int shared1, shared2; lock L, M;
    cobegin {
      thread {
        lock(L);
        shared1 = shared1 + 1;
        unlock(L);
        shared2 = 7;
      }
      thread {
        lock(M);
        shared1 = shared1 + 2;
        unlock(M);
        shared2 = 8;
      }
    }
    print(shared1);
    print(shared2);
  )");
  driver::Compilation c = driver::analyze(prog);
  DiagEngine diag;
  mutex::RaceReport races =
      mutex::detectRaces(c.graph(), c.mhp(), c.mutexes(), diag);
  // shared1: inconsistent locks; shared2: unlocked writes.
  EXPECT_EQ(races.inconsistentLocking, 1u);
  EXPECT_EQ(races.potentialRaces, 2u);
}

TEST(Integration, SequentializationCascade) {
  // CSCC folds b into print(2); PDCE kills both stores; LICM deletes the
  // emptied lock pairs; the final PDCE round removes the now fully empty
  // cobegin. Nothing parallel remains.
  ir::Program prog = parser::parseOrDie(R"(
    int a, b; lock L;
    cobegin {
      thread { lock(L); a = 1; unlock(L); }
      thread { lock(L); b = 2; unlock(L); }
    }
    print(b);
  )");
  opt::OptimizeReport report = opt::optimizeProgram(prog);
  const std::string text = ir::printProgram(prog);
  EXPECT_EQ(text.find("cobegin"), std::string::npos) << text;
  EXPECT_EQ(text.find("lock("), std::string::npos) << text;
  EXPECT_NE(text.find("print(2)"), std::string::npos) << text;
  EXPECT_GE(report.lockMotion.bodiesRemoved, 2u);
  interp::RunResult r = interp::run(prog);
  EXPECT_EQ(r.output, (std::vector<long long>{2}));
}

TEST(Integration, SerializationWhenOneThreadStaysLive) {
  // Only one thread has observable work, but the interpreter-visible
  // lock must stay (shared with nothing — LICM removes it, PDCE then
  // serializes the single live thread).
  ir::Program prog = parser::parseOrDie(R"(
    int a, b;
    cobegin {
      thread { a = 1; }
      thread { b = f(2); }
    }
    print(b);
  )");
  opt::OptimizeReport report = opt::optimizeProgram(prog);
  const std::string text = ir::printProgram(prog);
  // T0's a=1 is dead; T1 keeps the opaque call: single live thread.
  EXPECT_EQ(text.find("cobegin"), std::string::npos) << text;
  EXPECT_NE(text.find("b = f(2)"), std::string::npos) << text;
  EXPECT_GE(report.deadCode.cobeginsSerialized, 1u);
}

TEST(Integration, DeepNesting) {
  ir::Program prog = parser::parseOrDie(R"(
    int acc; lock L;
    cobegin {
      thread {
        int i; i = 0;
        while (i < 2) {
          if (i == 0) {
            cobegin {
              thread { lock(L); acc = acc + 1; unlock(L); }
              thread { lock(L); acc = acc + 2; unlock(L); }
            }
          } else {
            lock(L); acc = acc + 4; unlock(L);
          }
          i = i + 1;
        }
      }
      thread { lock(L); acc = acc + 8; unlock(L); }
    }
    print(acc);
  )");
  EXPECT_TRUE(ir::verify(prog).empty());
  opt::optimizeProgram(prog);
  EXPECT_TRUE(ir::verify(prog).empty());
  for (const interp::RunResult& r : interp::runManySeeds(prog, 10)) {
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.output, (std::vector<long long>{15}));
  }
}

TEST(Integration, LockIndependenceReportMatchesMotion) {
  // Statements the report calls independent are exactly the ones motion
  // evicts on this simple shape.
  ir::Program prog = parser::parseOrDie(R"(
    int s; lock L;
    cobegin {
      thread { int p; p = f(0); lock(L); s = s + 1; p = p + 1; unlock(L); print(p); }
      thread { lock(L); s = s + 2; unlock(L); }
    }
    print(s);
  )");
  std::size_t independentBefore;
  {
    driver::Compilation c = driver::analyze(prog, {.warnings = false});
    independentBefore = opt::analyzeCriticalSections(c).totalIndependent;
  }
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  opt::LicmStats stats = opt::moveLockIndependentCode(c);
  EXPECT_EQ(stats.hoisted + stats.sunk, independentBefore);
}

}  // namespace
}  // namespace cssame
