// Tests for the pipeline facade, the CSSA form printer and the
// critical-section report plumbing.
#include <gtest/gtest.h>

#include "src/cssa/form_printer.h"
#include "src/driver/pipeline.h"
#include "src/opt/cscc.h"
#include "src/opt/lockstats.h"
#include "src/parser/parser.h"
#include "src/pfg/dot.h"
#include "src/workload/paper_programs.h"

namespace cssame::driver {
namespace {

TEST(Pipeline, AllComponentsPopulated) {
  ir::Program prog = parser::parseOrDie(workload::figure2Source());
  Compilation c = analyze(prog);
  EXPECT_EQ(&c.program(), &prog);
  EXPECT_GT(c.graph().size(), 5u);
  EXPECT_TRUE(c.dom().reachable(c.graph().exit));
  EXPECT_TRUE(c.pdom().reachable(c.graph().entry));
  EXPECT_EQ(c.mutexes().bodies().size(), 2u);
  EXPECT_GT(c.ssa().defs.size(), 0u);
  EXPECT_EQ(c.piStats().pisPlaced, 5u);
  EXPECT_EQ(c.rewriteStats().pisRemoved, 4u);
}

TEST(Pipeline, CssameToggle) {
  ir::Program prog = parser::parseOrDie(workload::figure2Source());
  Compilation off = analyze(prog, {.enableCssame = false});
  EXPECT_EQ(off.rewriteStats().argsRemoved, 0u);
  EXPECT_EQ(off.ssa().countLivePis(), 5u);
}

TEST(Pipeline, WarningsToggle) {
  const char* unmatched = "int a; lock L; lock(L); a = 1;";
  ir::Program p1 = parser::parseOrDie(unmatched);
  Compilation withWarnings = analyze(p1, {.warnings = true});
  EXPECT_GT(withWarnings.diag().diagnostics().size(), 0u);

  ir::Program p2 = parser::parseOrDie(unmatched);
  Compilation noWarnings = analyze(p2, {.warnings = false});
  EXPECT_EQ(noWarnings.diag().diagnostics().size(), 0u);
}

TEST(FormPrinter, ShowsPhiAndPiTerms) {
  ir::Program prog = parser::parseOrDie(workload::figure2Source());
  Compilation c = analyze(prog);
  const std::string form = cssa::printForm(c.graph(), c.ssa());
  // Figure 3b's surviving terms.
  EXPECT_NE(form.find("= pi(b"), std::string::npos) << form;
  EXPECT_NE(form.find("= phi(a"), std::string::npos) << form;
  // SSA-renamed statement with a constant.
  EXPECT_NE(form.find("= 5"), std::string::npos);
  // The branch condition appears.
  EXPECT_NE(form.find("branch "), std::string::npos);
}

TEST(FormPrinter, CssaShowsAllPis) {
  ir::Program prog = parser::parseOrDie(workload::figure2Source());
  Compilation c = analyze(prog, {.enableCssame = false});
  const std::string form = cssa::printForm(c.graph(), c.ssa());
  std::size_t count = 0, pos = 0;
  while ((pos = form.find("= pi(", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 5u);
}

TEST(Dot, RendersFigure2) {
  ir::Program prog = parser::parseOrDie(workload::figure2Source());
  Compilation c = analyze(prog);
  const std::string dot = pfg::toDot(c.graph());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("lock"), std::string::npos);
  // Both sync edge styles appear (mutex dotted, conflicts dashed).
  EXPECT_NE(dot.find("style=dotted"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  // Options can suppress them.
  pfg::DotOptions bare;
  bare.showConflictEdges = false;
  bare.showMutexEdges = false;
  bare.showDsyncEdges = false;
  const std::string plain = pfg::toDot(c.graph(), bare);
  EXPECT_EQ(plain.find("style=dashed"), std::string::npos);
}

TEST(LockStats, Figure2Report) {
  ir::Program prog = parser::parseOrDie(workload::figure2Source());
  Compilation c = analyze(prog);
  opt::CriticalSectionReport report = opt::analyzeCriticalSections(c);
  ASSERT_EQ(report.bodies.size(), 2u);
  // T0: a=5, b=a+3, branch, a=a+b, x=a → 5; T1: a=b+6, y=a → 2.
  EXPECT_EQ(report.totalInterior, 7u);
  // Before optimization NOTHING is lock independent: even x = a reads
  // the concurrently-written a. This is exactly why the paper runs
  // constant propagation first (x = 13 is "lock independent code
  // produced by other optimizations", Section 5.3).
  EXPECT_EQ(report.totalIndependent, 0u);

  opt::propagateConstants(c);
  Compilation after = analyze(prog, {.warnings = false});
  opt::CriticalSectionReport report2 = opt::analyzeCriticalSections(after);
  EXPECT_GT(report2.totalIndependent, 0u);  // x = 13 qualifies now
}

TEST(Pipeline, ReanalysisIsStable) {
  // Analyzing twice must give identical statistics (no hidden state).
  ir::Program prog = parser::parseOrDie(workload::figure2Source());
  Compilation c1 = analyze(prog);
  Compilation c2 = analyze(prog);
  EXPECT_EQ(c1.ssa().countLivePis(), c2.ssa().countLivePis());
  EXPECT_EQ(c1.ssa().countLivePhis(), c2.ssa().countLivePhis());
  EXPECT_EQ(c1.graph().conflicts.size(), c2.graph().conflicts.size());
  EXPECT_EQ(c1.mutexes().bodies().size(), c2.mutexes().bodies().size());
}

TEST(Pipeline, PhaseTimesCoverEveryPass) {
  ir::Program prog = parser::parseOrDie(workload::figure2Source());
  Compilation c = analyze(prog);
  const auto& times = c.phaseTimes();
  ASSERT_GE(times.size(), 9u);
  EXPECT_EQ(times.front().name, "pfg");
  for (const auto& t : times) EXPECT_GE(t.seconds, 0.0) << t.name;
  // Lazy phases append on first use.
  const std::size_t before = times.size();
  (void)c.heldLocks();
  (void)c.reaching();
  ASSERT_EQ(c.phaseTimes().size(), before + 2);
  EXPECT_EQ(c.phaseTimes()[before].name, "heldlocks");
  EXPECT_EQ(c.phaseTimes()[before + 1].name, "reaching");
}

}  // namespace
}  // namespace cssame::driver
