// Property-based tests: randomized programs swept over seeds with
// parameterized gtest. Invariants checked on every program:
//   P1  the SSA form verifies after the full pipeline (CSSA and CSSAME),
//   P2  CSSAME only ever removes π terms/arguments relative to CSSA,
//   P3  optimizing a determinate program preserves its (unique) output,
//   P4  optimization never increases program size on these workloads,
//   P5  re-analysis of an optimized program still verifies,
//   P6  printing and re-parsing an optimized program is a fixpoint.
#include <gtest/gtest.h>

#include "src/driver/pipeline.h"
#include "src/interp/interp.h"
#include "src/ir/printer.h"
#include "src/ir/verify.h"
#include "src/opt/optimize.h"
#include "src/parser/parser.h"
#include "src/workload/generator.h"

namespace cssame {
namespace {

workload::GeneratorConfig configFor(std::uint64_t seed) {
  workload::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.threads = 2 + static_cast<int>(seed % 4);
  cfg.locks = 1 + static_cast<int>(seed % 3);
  cfg.sharedVars = 3 + static_cast<int>(seed % 5);
  cfg.stmtsPerThread = 10 + static_cast<int>(seed % 20);
  cfg.useEvents = seed % 3 == 0;
  cfg.determinate = true;
  // Pointer and array traffic on a third of the sweep. The knobs draw
  // nothing from the RNG at 0, so the remaining seeds generate their
  // exact pre-pointer programs; the generator's indirect updates are
  // additive under the target's lock, so P3 (determinate output) holds.
  if (seed % 3 == 1) {
    cfg.ptrProb = 0.2;
    cfg.arrayProb = 0.15;
  }
  return cfg;
}

class PipelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineProperty, SsaVerifiesUnderCssaAndCssame) {
  ir::Program prog = workload::generateRandom(configFor(GetParam()));
  {
    driver::Compilation c =
        driver::analyze(prog, {.enableCssame = false, .warnings = false});
    EXPECT_TRUE(c.ssa().verify(c.graph()).empty());
  }
  {
    driver::Compilation c = driver::analyze(prog, {.warnings = false});
    EXPECT_TRUE(c.ssa().verify(c.graph()).empty());
  }
}

TEST_P(PipelineProperty, CssameOnlyRemoves) {
  ir::Program p1 = workload::generateRandom(configFor(GetParam()));
  ir::Program p2 = workload::generateRandom(configFor(GetParam()));
  driver::Compilation cssa =
      driver::analyze(p1, {.enableCssame = false, .warnings = false});
  driver::Compilation cssame = driver::analyze(p2, {.warnings = false});
  EXPECT_LE(cssame.ssa().countLivePis(), cssa.ssa().countLivePis());
  EXPECT_LE(cssame.ssa().countPiConflictArgs(),
            cssa.ssa().countPiConflictArgs());
  EXPECT_EQ(cssame.ssa().countLivePhis(), cssa.ssa().countLivePhis());
}

TEST_P(PipelineProperty, OptimizationPreservesDeterminateOutput) {
  ir::Program prog = workload::generateRandom(configFor(GetParam()));
  const interp::RunResult before = interp::run(prog, {.seed = 123});
  ASSERT_TRUE(before.completed);

  opt::optimizeProgram(prog);
  EXPECT_TRUE(ir::verify(prog).empty());

  // Determinate programs: one canonical output across all schedules.
  for (const interp::RunResult& after : interp::runManySeeds(prog, 6)) {
    ASSERT_TRUE(after.completed);
    EXPECT_EQ(after.output, before.output) << "generator seed "
                                           << GetParam();
  }
}

TEST_P(PipelineProperty, OptimizationGrowsOnlyByHoistedTemps) {
  ir::Program prog = workload::generateRandom(configFor(GetParam()));
  const std::size_t before = prog.size();
  opt::OptimizeReport report = opt::optimizeProgram(prog);
  // Expression hoisting introduces one temporary per hoist; everything
  // else only removes statements.
  EXPECT_LE(prog.size(), before + report.exprMotion.exprsHoisted);
}

TEST_P(PipelineProperty, OptimizedProgramReanalyzes) {
  ir::Program prog = workload::generateRandom(configFor(GetParam()));
  opt::optimizeProgram(prog);
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  EXPECT_TRUE(c.ssa().verify(c.graph()).empty());
}

TEST_P(PipelineProperty, PrintParseFixpoint) {
  ir::Program prog = workload::generateRandom(configFor(GetParam()));
  opt::optimizeProgram(prog);
  const std::string text1 = ir::printProgram(prog);
  ir::Program reparsed = parser::parseOrDie(text1);
  EXPECT_EQ(ir::printProgram(reparsed), text1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

// Same sweep over the structured lock workload: not determinate (races
// by construction at low locked fractions), so only the structural
// invariants are checked — plus CSCC/PDCE monotonicity under CSSAME.
class LockWorkloadProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LockWorkloadProperty, AnalysisInvariants) {
  const std::uint64_t seed = GetParam();
  const double frac = static_cast<double>(seed % 5) / 4.0;
  ir::Program p1 = workload::makeLockStructured(3, 4, 4, frac, seed);
  ir::Program p2 = workload::makeLockStructured(3, 4, 4, frac, seed);
  driver::Compilation cssa =
      driver::analyze(p1, {.enableCssame = false, .warnings = false});
  driver::Compilation cssame = driver::analyze(p2, {.warnings = false});
  EXPECT_TRUE(cssa.ssa().verify(cssa.graph()).empty());
  EXPECT_TRUE(cssame.ssa().verify(cssame.graph()).empty());
  EXPECT_LE(cssame.ssa().countPiConflictArgs(),
            cssa.ssa().countPiConflictArgs());
}

TEST_P(LockWorkloadProperty, OptimizerTerminatesAndVerifies) {
  ir::Program prog =
      workload::makeLockStructured(3, 4, 4, 0.75, GetParam());
  opt::OptimizeReport report = opt::optimizeProgram(prog);
  EXPECT_LE(report.iterations, 8);
  EXPECT_TRUE(ir::verify(prog).empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockWorkloadProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace cssame
