// Edge cases and smaller surfaces not covered elsewhere: explorer
// budgets, machine state hashing, printer corner cases, doall keyword
// interactions, interpreter fuel, symbol table queries.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/interp/explore.h"
#include "src/interp/interp.h"
#include "src/interp/machine.h"
#include "src/ir/printer.h"
#include "src/parser/parser.h"

namespace cssame {
namespace {

TEST(ExploreBudget, ExhaustionReportedNotFatal) {
  // A loopy two-thread program with a big state space and a tiny budget.
  ir::Program prog = parser::parseOrDie(R"(
    int a, b;
    cobegin {
      thread { int i; i = 0; while (i < 30) { a = a + 1; i = i + 1; } }
      thread { int j; j = 0; while (j < 30) { b = b + 1; j = j + 1; } }
    }
    print(a + b);
  )");
  interp::ExploreResult r =
      interp::exploreAllSchedules(prog, {.maxSteps = 500, .dpor = false});
  EXPECT_FALSE(r.complete);
  // The two threads touch disjoint variables, so partial-order reduction
  // collapses the interleaving product — 500 steps then complete the
  // sweep. A budget below even the reduced sweep still trips.
  interp::ExploreResult reduced =
      interp::exploreAllSchedules(prog, {.maxSteps = 500});
  EXPECT_TRUE(reduced.complete);
  EXPECT_GT(reduced.dpor.prunedSuccessors, 0u);
  interp::ExploreResult tiny =
      interp::exploreAllSchedules(prog, {.maxSteps = 20});
  EXPECT_FALSE(tiny.complete);
}

TEST(ExploreBudget, SpinLoopHasFiniteStateSpaceAndNoOutputs) {
  // The spin re-visits one dynamic state forever; state deduplication
  // closes the cycle, so exploration COMPLETES over the finite state
  // space — and finds no terminating schedule at all.
  ir::Program prog = parser::parseOrDie(R"(
    int a;
    while (a == 0) { }
    print(a);
  )");
  interp::ExploreResult r = interp::exploreAllSchedules(prog);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.outputs.empty());
  EXPECT_FALSE(r.anyDeadlock);  // spinning is not blocking
}

TEST(ExploreBudget, SpinReleasedByOtherThreadStillEnumerates) {
  ir::Program prog = parser::parseOrDie(R"(
    int flag;
    cobegin {
      thread { flag = 1; }
      thread { while (flag == 0) { } print(flag); }
    }
  )");
  interp::ExploreResult r = interp::exploreAllSchedules(prog);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.outputList(),
            (std::vector<std::vector<long long>>{{1}}));
}

TEST(Machine, StateHashDistinguishesProgress) {
  ir::Program prog = parser::parseOrDie("int a; a = 1; a = 2; print(a);");
  interp::Machine m(prog);
  std::vector<std::uint64_t> hashes{m.stateHash()};
  while (m.anyAlive()) {
    const auto ready = m.readyThreads();
    ASSERT_FALSE(ready.empty());
    m.stepThread(ready[0]);
    hashes.push_back(m.stateHash());
  }
  // Every step changed the dynamic state.
  std::sort(hashes.begin(), hashes.end());
  EXPECT_EQ(std::adjacent_find(hashes.begin(), hashes.end()), hashes.end());
}

TEST(Machine, CopyForksIndependently) {
  ir::Program prog = parser::parseOrDie(R"(
    int a;
    cobegin {
      thread { a = 1; }
      thread { a = 2; }
    }
    print(a);
  )");
  interp::Machine m(prog);
  // Advance to the scheduling choice between the two stores.
  while (m.readyThreads().size() < 2) m.stepThread(m.readyThreads()[0]);
  interp::Machine fork = m;
  const auto ready = m.readyThreads();
  ASSERT_EQ(ready.size(), 2u);
  m.stepThread(ready[0]);
  fork.stepThread(ready[1]);
  EXPECT_NE(m.stateHash(), fork.stateHash());
}

TEST(Interp, FuelLimitsHonored) {
  ir::Program prog = parser::parseOrDie("int a; while (a == 0) { }");
  interp::RunResult r = interp::run(prog, {.seed = 1, .maxSteps = 123});
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.steps, 123u);
}

TEST(Printer, DoallRoundTripsAsCobegin) {
  ir::Program p = parser::parseOrDie(R"(
    int s; doall i = 0, 1 { s = s + i; }
  )");
  const std::string text = ir::printProgram(p);
  // The macro is expanded: the printed program shows the cobegin form.
  EXPECT_NE(text.find("cobegin"), std::string::npos);
  EXPECT_NE(text.find("thread i0"), std::string::npos);
  EXPECT_NE(text.find("thread i1"), std::string::npos);
  // And it re-parses to the same text.
  ir::Program q = parser::parseOrDie(text);
  EXPECT_EQ(ir::printProgram(q), text);
}

TEST(Printer, DeeplyNestedStructures) {
  ir::Program p = parser::parseOrDie(R"(
    int a;
    if (a > 0) {
      while (a < 10) {
        if (a == 5) { a = a + 2; } else { a = a + 1; }
      }
    }
    print(a);
  )");
  ir::Program q = parser::parseOrDie(ir::printProgram(p));
  EXPECT_EQ(ir::printProgram(q), ir::printProgram(p));
  EXPECT_EQ(p.size(), q.size());
}

TEST(Symbols, LookupAndKinds) {
  ir::Program p = parser::parseOrDie(
      "int a; lock L; event e; a = f(1);");
  const ir::SymbolTable& syms = p.symbols;
  EXPECT_TRUE(syms.isSharedVar(syms.lookup("a")));
  EXPECT_FALSE(syms.isSharedVar(syms.lookup("L")));
  EXPECT_EQ(syms[syms.lookup("e")].kind, ir::SymbolKind::Event);
  EXPECT_FALSE(syms.lookup("missing").valid());
  EXPECT_EQ(syms.nameOf(syms.lookup("a")), "a");
}

TEST(Interp, ManySeedsHelperCoversSeedRange) {
  ir::Program p = parser::parseOrDie(R"(
    cobegin {
      thread { print(1); }
      thread { print(2); }
    }
  )");
  auto results = interp::runManySeeds(p, 30);
  ASSERT_EQ(results.size(), 30u);
  bool saw12 = false, saw21 = false;
  for (const auto& r : results) {
    saw12 |= r.output == std::vector<long long>{1, 2};
    saw21 |= r.output == std::vector<long long>{2, 1};
  }
  EXPECT_TRUE(saw12);
  EXPECT_TRUE(saw21);
}

TEST(Interp, DoallBarrierTogether) {
  // Barriers inside doall iterations rendezvous across all iterations.
  ir::Program prog = parser::parseOrDie(R"(
    int s0, s1, s2, t;
    doall i = 0, 2 {
      if (i == 0) { s0 = 1; }
      if (i == 1) { s1 = 2; }
      if (i == 2) { s2 = 3; }
      barrier;
      if (i == 0) { t = s0 + s1 + s2; }
    }
    print(t);
  )");
  for (const interp::RunResult& r : interp::runManySeeds(prog, 15)) {
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.output, (std::vector<long long>{6}));
  }
}

}  // namespace
}  // namespace cssame
