// Unit tests for parallel dead code elimination: seeds, liveness through
// φ/π reaching definitions, control dependence, cobegin serialization.
#include <gtest/gtest.h>

#include "src/driver/pipeline.h"
#include "src/interp/interp.h"
#include "src/ir/printer.h"
#include "src/ir/verify.h"
#include "src/opt/pdce.h"
#include "src/parser/parser.h"

namespace cssame::opt {
namespace {

std::string eliminate(const char* src, DceStats* statsOut = nullptr) {
  ir::Program prog = parser::parseOrDie(src);
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  DceStats stats = eliminateDeadCode(c);
  if (statsOut != nullptr) *statsOut = stats;
  EXPECT_TRUE(ir::verify(prog).empty());
  return ir::printProgram(prog);
}

TEST(Pdce, RemovesUnusedAssignment) {
  DceStats stats;
  const std::string text =
      eliminate("int a, b; a = 1; b = 2; print(b);", &stats);
  EXPECT_EQ(text.find("a = 1"), std::string::npos);
  EXPECT_NE(text.find("b = 2"), std::string::npos);
  EXPECT_EQ(stats.stmtsRemoved, 1u);
}

TEST(Pdce, KeepsTransitiveChain) {
  const std::string text =
      eliminate("int a, b, c; a = 1; b = a + 1; c = b + 1; print(c);");
  EXPECT_NE(text.find("a = 1"), std::string::npos);
  EXPECT_NE(text.find("b = a + 1"), std::string::npos);
}

TEST(Pdce, RemovesDeadChain) {
  DceStats stats;
  const std::string text = eliminate(
      "int a, b, c; a = 1; b = a + 1; c = b + 1; print(1);", &stats);
  EXPECT_EQ(stats.stmtsRemoved, 3u);
  EXPECT_EQ(text.find("a = 1"), std::string::npos);
}

TEST(Pdce, KeepsKilledButObservableDefs) {
  // a = 1 is killed by a = 2 before the print: dead.
  const std::string text =
      eliminate("int a; a = 1; a = 2; print(a);");
  EXPECT_EQ(text.find("a = 1"), std::string::npos);
  EXPECT_NE(text.find("a = 2"), std::string::npos);
}

TEST(Pdce, CallsAreLiveSeeds) {
  const std::string text = eliminate("int a; a = 1; f(a);");
  EXPECT_NE(text.find("a = 1"), std::string::npos);
  EXPECT_NE(text.find("f(a)"), std::string::npos);
}

TEST(Pdce, CallInRhsKeepsAssignment) {
  // The call may have side effects even if the result is unused.
  const std::string text = eliminate("int a; a = f(1);");
  EXPECT_NE(text.find("a = f(1)"), std::string::npos);
}

TEST(Pdce, SyncOpsAreKept) {
  const std::string text = eliminate(R"(
    lock L; event e;
    cobegin {
      thread { lock(L); unlock(L); }
      thread { set(e); }
      thread { wait(e); }
    }
  )");
  EXPECT_NE(text.find("lock(L)"), std::string::npos);
  EXPECT_NE(text.find("set(e)"), std::string::npos);
  EXPECT_NE(text.find("wait(e)"), std::string::npos);
}

TEST(Pdce, BranchKeptWhenBodyLive) {
  const std::string text = eliminate(R"(
    int a, c;
    c = f(0);
    if (c > 0) { a = 1; }
    print(a);
  )");
  EXPECT_NE(text.find("if (c > 0)"), std::string::npos);
  EXPECT_NE(text.find("c = f(0)"), std::string::npos);
}

TEST(Pdce, BranchRemovedWhenBodyDead) {
  DceStats stats;
  const std::string text = eliminate(R"(
    int a, b, c;
    c = 1;
    if (c > 0) { a = 1; }
    print(b);
  )", &stats);
  EXPECT_EQ(text.find("if"), std::string::npos) << text;
  // c = 1 also dies once the branch is gone... c's liveness came only
  // from the branch condition.
  EXPECT_EQ(text.find("a = 1"), std::string::npos);
}

TEST(Pdce, WhileKeptWhenBodyLive) {
  const std::string text = eliminate(R"(
    int i, s;
    i = 0;
    while (i < 5) { s = s + i; i = i + 1; }
    print(s);
  )");
  EXPECT_NE(text.find("while (i < 5)"), std::string::npos);
  EXPECT_NE(text.find("i = i + 1"), std::string::npos);
}

TEST(Pdce, CrossThreadLiveness) {
  // The paper's key case: b = 8 in T0 looks dead sequentially but is
  // read by T1 through a π.
  const std::string text = eliminate(R"(
    int a, b; lock L;
    cobegin {
      thread { lock(L); b = 8; unlock(L); }
      thread { lock(L); a = b + 6; unlock(L); print(a); }
    }
  )");
  EXPECT_NE(text.find("b = 8"), std::string::npos) << text;
}

TEST(Pdce, DeadInBothThreadsRemoved) {
  DceStats stats;
  const std::string text = eliminate(R"(
    int a, b;
    cobegin {
      thread { a = 1; print(b); }
      thread { b = 2; }
    }
  )", &stats);
  EXPECT_EQ(text.find("a = 1"), std::string::npos);
  EXPECT_NE(text.find("b = 2"), std::string::npos);
}

TEST(Pdce, SerializesSingleLiveThread) {
  DceStats stats;
  const std::string text = eliminate(R"(
    int a, b;
    cobegin {
      thread { a = 1; }
      thread { b = 2; }
    }
    print(b);
  )", &stats);
  EXPECT_EQ(stats.cobeginsSerialized, 1u);
  EXPECT_EQ(text.find("cobegin"), std::string::npos) << text;
  EXPECT_NE(text.find("b = 2"), std::string::npos);
}

TEST(Pdce, RemovesFullyDeadCobegin) {
  DceStats stats;
  const std::string text = eliminate(R"(
    int a, b;
    cobegin {
      thread { a = 1; }
      thread { b = 2; }
    }
    print(3);
  )", &stats);
  EXPECT_EQ(text.find("cobegin"), std::string::npos);
  EXPECT_EQ(stats.stmtsRemoved, 3u);  // two assigns + the cobegin
}

TEST(Pdce, KeepsMultiThreadLiveCobegin) {
  const std::string text = eliminate(R"(
    int a, b;
    cobegin {
      thread { a = 1; }
      thread { b = 2; }
    }
    print(a + b);
  )");
  EXPECT_NE(text.find("cobegin"), std::string::npos);
}

TEST(Pdce, SemanticsPreservedOnFigure2) {
  ir::Program prog = parser::parseOrDie(R"(
    int a, b, x, y; lock L;
    a = 0; b = 0;
    cobegin {
      thread { lock(L); a = 5; b = a + 3; if (b > 4) { a = a + b; } x = a; unlock(L); }
      thread { lock(L); a = b + 6; y = a; unlock(L); }
    }
    print(x);
    print(y);
  )");
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  eliminateDeadCode(c);
  for (const interp::RunResult& r : interp::runManySeeds(prog, 15)) {
    ASSERT_TRUE(r.completed);
    ASSERT_EQ(r.output.size(), 2u);
    EXPECT_EQ(r.output[0], 13);
    EXPECT_TRUE(r.output[1] == 6 || r.output[1] == 14);
  }
}

}  // namespace
}  // namespace cssame::opt
