// Unit tests for dominators, post-dominators and dominance frontiers on
// the PFG (paper Definition 2: dominance over control paths only).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/analysis/dominance.h"
#include "src/parser/parser.h"
#include "src/pfg/build.h"

namespace cssame::analysis {
namespace {

using pfg::Graph;
using pfg::NodeKind;

struct Fixture {
  ir::Program prog;
  Graph graph;
  Dominators dom;
  Dominators pdom;

  explicit Fixture(const char* src)
      : prog(parser::parseOrDie(src)),
        graph(pfg::buildPfg(prog)),
        dom(graph, Dominators::Direction::Forward),
        pdom(graph, Dominators::Direction::Reverse) {}

  NodeId nodeWithConst(long long v) {
    for (const pfg::Node& n : graph.nodes())
      for (const ir::Stmt* s : n.stmts)
        if (s->kind == ir::StmtKind::Assign &&
            s->expr->kind == ir::ExprKind::IntConst && s->expr->intValue == v)
          return n.id;
    ADD_FAILURE() << "no node assigning constant " << v;
    return NodeId{};
  }
};

TEST(Dominators, EntryDominatesEverything) {
  Fixture f("int a; if (a > 0) { a = 1; } else { a = 2; } a = 3;");
  for (const pfg::Node& n : f.graph.nodes()) {
    if (!f.dom.reachable(n.id)) continue;
    EXPECT_TRUE(f.dom.dominates(f.graph.entry, n.id));
  }
}

TEST(Dominators, ExitPostDominatesEverything) {
  Fixture f("int a; while (a < 3) { a = a + 1; } print(a);");
  for (const pfg::Node& n : f.graph.nodes()) {
    if (!f.pdom.reachable(n.id)) continue;
    EXPECT_TRUE(f.pdom.dominates(f.graph.exit, n.id));
  }
}

TEST(Dominators, DiamondBranchesDoNotDominateJoin) {
  Fixture f("int a; if (a > 0) { a = 1; } else { a = 2; } a = 3;");
  const NodeId thenNode = f.nodeWithConst(1);
  const NodeId elseNode = f.nodeWithConst(2);
  const NodeId join = f.nodeWithConst(3);
  EXPECT_FALSE(f.dom.dominates(thenNode, join));
  EXPECT_FALSE(f.dom.dominates(elseNode, join));
  EXPECT_FALSE(f.dom.dominates(thenNode, elseNode));
  // The join post-dominates both branches.
  EXPECT_TRUE(f.pdom.dominates(join, thenNode));
  EXPECT_TRUE(f.pdom.dominates(join, elseNode));
}

TEST(Dominators, ReflexiveAndStrict) {
  Fixture f("int a; a = 1;");
  const NodeId n = f.nodeWithConst(1);
  EXPECT_TRUE(f.dom.dominates(n, n));
  EXPECT_FALSE(f.dom.strictlyDominates(n, n));
  EXPECT_TRUE(f.dom.strictlyDominates(f.graph.entry, n));
}

TEST(Dominators, IdomChainReachesRoot) {
  Fixture f(
      "int a; if (a > 0) { if (a > 1) { a = 1; } } while (a < 9) { a = a + 2; }");
  for (const pfg::Node& n : f.graph.nodes()) {
    if (!f.dom.reachable(n.id) || n.id == f.graph.entry) continue;
    // Walk up the idom chain; it must terminate at the entry.
    NodeId cur = n.id;
    int steps = 0;
    while (cur != f.graph.entry) {
      cur = f.dom.idom(cur);
      ASSERT_TRUE(cur.valid());
      ASSERT_LT(++steps, 1000);
    }
  }
}

TEST(Dominators, LoopHeaderDominatesBody) {
  Fixture f("int a; while (a < 5) { a = 1; } print(a);");
  const NodeId body = f.nodeWithConst(1);
  NodeId header;
  for (const pfg::Node& n : f.graph.nodes())
    if (n.terminator != nullptr) header = n.id;
  // The increment is inside the body: a = a + 1 has IntConst operand 1.
  ASSERT_TRUE(header.valid());
  EXPECT_TRUE(f.dom.dominates(header, body));
  EXPECT_FALSE(f.dom.dominates(body, header));
}

TEST(Dominators, FrontierOfBranchArmsIsJoin) {
  Fixture f("int a; if (a > 0) { a = 1; } else { a = 2; } a = 3;");
  const NodeId thenNode = f.nodeWithConst(1);
  const NodeId join = f.nodeWithConst(3);
  const auto& frontier = f.dom.frontier(thenNode);
  EXPECT_NE(std::find(frontier.begin(), frontier.end(), join), frontier.end());
}

TEST(Dominators, LoopBodyFrontierContainsHeader) {
  Fixture f("int a; while (a < 5) { a = 1; } print(a);");
  const NodeId body = f.nodeWithConst(1);
  NodeId header;
  for (const pfg::Node& n : f.graph.nodes())
    if (n.terminator != nullptr) header = n.id;
  const auto& frontier = f.dom.frontier(body);
  EXPECT_NE(std::find(frontier.begin(), frontier.end(), header),
            frontier.end());
}

TEST(Dominators, CobeginThreadsMutuallyUndominated) {
  Fixture f(R"(
    int a;
    cobegin {
      thread { a = 1; }
      thread { a = 2; }
    }
    a = 3;
  )");
  const NodeId t0 = f.nodeWithConst(1);
  const NodeId t1 = f.nodeWithConst(2);
  const NodeId after = f.nodeWithConst(3);
  EXPECT_FALSE(f.dom.dominates(t0, t1));
  EXPECT_FALSE(f.dom.dominates(t1, t0));
  EXPECT_FALSE(f.dom.dominates(t0, after));  // other thread path avoids t0
  // The coend (and hence the code after it) post-dominates both threads.
  EXPECT_TRUE(f.pdom.dominates(after, t0));
  EXPECT_TRUE(f.pdom.dominates(after, t1));
}

TEST(Dominators, RpoOrderStartsAtRoot) {
  Fixture f("int a; a = 1; if (a > 0) { a = 2; }");
  ASSERT_FALSE(f.dom.order().empty());
  EXPECT_EQ(f.dom.order().front(), f.graph.entry);
  ASSERT_FALSE(f.pdom.order().empty());
  EXPECT_EQ(f.pdom.order().front(), f.graph.exit);
}

TEST(Dominators, ChildrenConsistentWithIdom) {
  Fixture f("int a; if (a) { a = 1; } else { a = 2; } while (a) { a = 3; }");
  for (const pfg::Node& n : f.graph.nodes()) {
    for (NodeId c : f.dom.children(n.id)) EXPECT_EQ(f.dom.idom(c), n.id);
  }
}

}  // namespace
}  // namespace cssame::analysis
