// Unit tests for the support layer: typed ids, dynamic bitsets,
// diagnostics, the thread pool and the sharded visited set.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <unordered_set>
#include <vector>

#include "src/support/bitset.h"
#include "src/support/counters.h"
#include "src/support/diag.h"
#include "src/support/fingerprint.h"
#include "src/support/ids.h"
#include "src/support/threadpool.h"
#include "src/support/visited.h"

namespace cssame {
namespace {

TEST(Ids, DefaultIsInvalid) {
  SymbolId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, SymbolId{});
}

TEST(Ids, ValueRoundTrip) {
  NodeId id{42};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
  EXPECT_EQ(id.index(), 42u);
}

TEST(Ids, Ordering) {
  EXPECT_LT(StmtId{1}, StmtId{2});
  EXPECT_NE(StmtId{1}, StmtId{2});
  EXPECT_EQ(StmtId{7}, StmtId{7});
}

TEST(Ids, Hashable) {
  std::unordered_set<SsaNameId> set;
  set.insert(SsaNameId{1});
  set.insert(SsaNameId{2});
  set.insert(SsaNameId{1});
  EXPECT_EQ(set.size(), 2u);
}

TEST(Bitset, SetResetTest) {
  DynBitset b(100);
  EXPECT_TRUE(b.none());
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(99);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(99));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(Bitset, SetAllRespectsSize) {
  DynBitset b(70);
  b.setAll();
  EXPECT_EQ(b.count(), 70u);
  b.resetAll();
  EXPECT_TRUE(b.none());
}

TEST(Bitset, UnionIntersectSubtract) {
  DynBitset a(10), b(10);
  a.set(1);
  a.set(3);
  b.set(3);
  b.set(5);

  DynBitset u = a;
  EXPECT_TRUE(u.unionWith(b));
  EXPECT_EQ(u.count(), 3u);
  EXPECT_FALSE(u.unionWith(b));  // no change the second time

  DynBitset i = a;
  EXPECT_TRUE(i.intersectWith(b));
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(3));

  DynBitset d = a;
  EXPECT_TRUE(d.subtract(b));
  EXPECT_EQ(d.count(), 1u);
  EXPECT_TRUE(d.test(1));
}

TEST(Bitset, ForEachInOrder) {
  DynBitset b(130);
  b.set(2);
  b.set(64);
  b.set(129);
  std::vector<std::size_t> seen;
  b.forEach([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{2, 64, 129}));
}

TEST(Bitset, Equality) {
  DynBitset a(20), b(20);
  a.set(7);
  b.set(7);
  EXPECT_EQ(a, b);
  b.set(8);
  EXPECT_FALSE(a == b);
}

TEST(Bitset, ResizeKeepsBits) {
  DynBitset b(10);
  b.set(9);
  b.resize(200);
  EXPECT_TRUE(b.test(9));
  EXPECT_EQ(b.count(), 1u);
}

TEST(Diag, CollectsInOrder) {
  DiagEngine diag;
  diag.warn(DiagCode::UnmatchedLock, {1, 2}, "first");
  diag.error(DiagCode::SyntaxError, {3, 4}, "second");
  ASSERT_EQ(diag.diagnostics().size(), 2u);
  EXPECT_EQ(diag.diagnostics()[0].message, "first");
  EXPECT_TRUE(diag.hasErrors());
  EXPECT_EQ(diag.errorCount(), 1u);
}

TEST(Diag, CountOf) {
  DiagEngine diag;
  diag.warn(DiagCode::PotentialDataRace, {}, "a");
  diag.warn(DiagCode::PotentialDataRace, {}, "b");
  diag.warn(DiagCode::UnmatchedLock, {}, "c");
  EXPECT_EQ(diag.countOf(DiagCode::PotentialDataRace), 2u);
  EXPECT_EQ(diag.countOf(DiagCode::UnmatchedUnlock), 0u);
}

TEST(Diag, Formatting) {
  Diagnostic d{DiagSeverity::Warning, DiagCode::InconsistentLocking,
               {12, 3}, "msg"};
  EXPECT_EQ(d.str(), "warning [inconsistent-locking] 12:3: msg");
  Diagnostic noLoc{DiagSeverity::Error, DiagCode::SyntaxError, {}, "bad"};
  EXPECT_EQ(noLoc.str(), "error [syntax-error] bad");
}

TEST(Diag, ClearResets) {
  DiagEngine diag;
  diag.error(DiagCode::SyntaxError, {}, "x");
  diag.clear();
  EXPECT_FALSE(diag.hasErrors());
  EXPECT_TRUE(diag.diagnostics().empty());
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  support::ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4u);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallelFor(kN, [&](std::size_t i, unsigned worker) {
    EXPECT_LT(worker, pool.workers());
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, PerWorkerAccumulationSums) {
  support::ThreadPool pool(3);
  std::vector<long long> partial(pool.workers(), 0);
  pool.parallelFor(1000, [&](std::size_t i, unsigned worker) {
    partial[worker] += static_cast<long long>(i);
  });
  long long sum = 0;
  for (long long p : partial) sum += p;
  EXPECT_EQ(sum, 999LL * 1000 / 2);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  support::ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallelFor(round, [&](std::size_t, unsigned) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), round);
  }
}

TEST(ThreadPool, SizeOneRunsInline) {
  support::ThreadPool pool(1);
  EXPECT_EQ(pool.workers(), 1u);
  const auto self = std::this_thread::get_id();
  pool.parallelFor(10, [&](std::size_t, unsigned worker) {
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(std::this_thread::get_id(), self);
  });
}

TEST(ThreadPool, ZeroPicksDefaultAndClamps) {
  support::ThreadPool pool(0);
  EXPECT_GE(pool.workers(), 1u);
  EXPECT_LE(pool.workers(), 16u);
  EXPECT_GE(support::ThreadPool::defaultWorkers(), 1u);
}

TEST(ShardedVisited, InsertContainsAndDuplicates) {
  support::ShardedVisited visited;
  const support::Hash128 a{0x1234, 0x5678};
  const support::Hash128 b{0x1234, 0x9999};  // same hi, different lo
  EXPECT_FALSE(visited.contains(a));
  EXPECT_TRUE(visited.insert(a));
  EXPECT_FALSE(visited.insert(a));  // duplicate
  EXPECT_TRUE(visited.insert(b));
  EXPECT_TRUE(visited.contains(a));
  EXPECT_TRUE(visited.contains(b));
  EXPECT_EQ(visited.size(), 2u);
  EXPECT_EQ(visited.approxBytes(), 2u * 2 * sizeof(support::Hash128));
}

TEST(ShardedVisited, ShardOfIsStableAndInRange) {
  for (std::uint64_t hi = 0; hi < 256; ++hi) {
    const support::Hash128 h{hi << 56, 42};
    const std::size_t shard = support::ShardedVisited::shardOf(h);
    EXPECT_LT(shard, support::ShardedVisited::kShards);
    EXPECT_EQ(shard, support::ShardedVisited::shardOf(h));
  }
}

TEST(ShardedVisited, ConcurrentInsertsAllLand) {
  support::ShardedVisited visited;
  support::ThreadPool pool(4);
  constexpr std::size_t kN = 4096;
  pool.parallelFor(kN, [&](std::size_t i, unsigned) {
    // Spread hi so every shard sees traffic.
    visited.insert(support::Hash128{static_cast<std::uint64_t>(i) << 52,
                                    static_cast<std::uint64_t>(i)});
  });
  EXPECT_EQ(visited.size(), kN);
}

TEST(ThreadPool, SubmitRunsEveryTask) {
  support::ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.waitIdle();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, SubmitSizeOneRunsInline) {
  support::ThreadPool pool(1);
  bool ran = false;
  pool.submit([&] { ran = true; });
  // No other thread exists; submit must have run the task already.
  EXPECT_TRUE(ran);
  pool.waitIdle();
}

TEST(ThreadPool, SubmitInterleavesWithParallelFor) {
  support::ThreadPool pool(4);
  std::atomic<int> tasks{0};
  std::atomic<int> indices{0};
  for (int i = 0; i < 16; ++i)
    pool.submit([&] { tasks.fetch_add(1, std::memory_order_relaxed); });
  pool.parallelFor(64, [&](std::size_t, unsigned) {
    indices.fetch_add(1, std::memory_order_relaxed);
  });
  pool.waitIdle();
  EXPECT_EQ(tasks.load(), 16);
  EXPECT_EQ(indices.load(), 64);
}

TEST(Counter, IncrementsAndReads) {
  support::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.inc(0);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ConcurrentIncrementsAllLand) {
  support::Counter c;
  support::ThreadPool pool(4);
  pool.parallelFor(1000, [&](std::size_t, unsigned) { c.inc(); });
  EXPECT_EQ(c.value(), 1000u);
}

TEST(Fingerprint, DeterministicAndContentSensitive) {
  const support::Hash128 a = support::fingerprintBytes("hello");
  EXPECT_EQ(a, support::fingerprintBytes("hello"));
  EXPECT_NE(a, support::fingerprintBytes("hellp"));
  EXPECT_NE(a, support::fingerprintBytes("hello "));
  EXPECT_NE(a, support::fingerprintBytes(""));
}

TEST(Fingerprint, LengthPrefixingSeparatesConcatenations) {
  // "ab"+"c" and "a"+"bc" feed the same bytes; the length prefix must
  // still separate them, or cache keys built from several fields would
  // collide across field boundaries.
  support::Fingerprinter f1;
  f1.mixBytes("ab");
  f1.mixBytes("c");
  support::Fingerprinter f2;
  f2.mixBytes("a");
  f2.mixBytes("bc");
  EXPECT_NE(f1.digest(), f2.digest());
}

TEST(Fingerprint, HexRoundTrip) {
  const support::Hash128 h = support::fingerprintBytes("round trip");
  const std::string hex = support::toHex(h);
  EXPECT_EQ(hex.size(), 32u);
  support::Hash128 back{};
  ASSERT_TRUE(support::fromHex(hex, back));
  EXPECT_EQ(back, h);
  EXPECT_FALSE(support::fromHex("short", back));
  EXPECT_FALSE(support::fromHex(std::string(32, 'g'), back));
  EXPECT_FALSE(support::fromHex(hex + "00", back));
}

}  // namespace
}  // namespace cssame
