// Unit tests for the support layer: typed ids, dynamic bitsets,
// diagnostics.
#include <gtest/gtest.h>

#include <unordered_set>

#include "src/support/bitset.h"
#include "src/support/diag.h"
#include "src/support/ids.h"

namespace cssame {
namespace {

TEST(Ids, DefaultIsInvalid) {
  SymbolId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, SymbolId{});
}

TEST(Ids, ValueRoundTrip) {
  NodeId id{42};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
  EXPECT_EQ(id.index(), 42u);
}

TEST(Ids, Ordering) {
  EXPECT_LT(StmtId{1}, StmtId{2});
  EXPECT_NE(StmtId{1}, StmtId{2});
  EXPECT_EQ(StmtId{7}, StmtId{7});
}

TEST(Ids, Hashable) {
  std::unordered_set<SsaNameId> set;
  set.insert(SsaNameId{1});
  set.insert(SsaNameId{2});
  set.insert(SsaNameId{1});
  EXPECT_EQ(set.size(), 2u);
}

TEST(Bitset, SetResetTest) {
  DynBitset b(100);
  EXPECT_TRUE(b.none());
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(99);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(99));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(Bitset, SetAllRespectsSize) {
  DynBitset b(70);
  b.setAll();
  EXPECT_EQ(b.count(), 70u);
  b.resetAll();
  EXPECT_TRUE(b.none());
}

TEST(Bitset, UnionIntersectSubtract) {
  DynBitset a(10), b(10);
  a.set(1);
  a.set(3);
  b.set(3);
  b.set(5);

  DynBitset u = a;
  EXPECT_TRUE(u.unionWith(b));
  EXPECT_EQ(u.count(), 3u);
  EXPECT_FALSE(u.unionWith(b));  // no change the second time

  DynBitset i = a;
  EXPECT_TRUE(i.intersectWith(b));
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(3));

  DynBitset d = a;
  EXPECT_TRUE(d.subtract(b));
  EXPECT_EQ(d.count(), 1u);
  EXPECT_TRUE(d.test(1));
}

TEST(Bitset, ForEachInOrder) {
  DynBitset b(130);
  b.set(2);
  b.set(64);
  b.set(129);
  std::vector<std::size_t> seen;
  b.forEach([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{2, 64, 129}));
}

TEST(Bitset, Equality) {
  DynBitset a(20), b(20);
  a.set(7);
  b.set(7);
  EXPECT_EQ(a, b);
  b.set(8);
  EXPECT_FALSE(a == b);
}

TEST(Bitset, ResizeKeepsBits) {
  DynBitset b(10);
  b.set(9);
  b.resize(200);
  EXPECT_TRUE(b.test(9));
  EXPECT_EQ(b.count(), 1u);
}

TEST(Diag, CollectsInOrder) {
  DiagEngine diag;
  diag.warn(DiagCode::UnmatchedLock, {1, 2}, "first");
  diag.error(DiagCode::SyntaxError, {3, 4}, "second");
  ASSERT_EQ(diag.diagnostics().size(), 2u);
  EXPECT_EQ(diag.diagnostics()[0].message, "first");
  EXPECT_TRUE(diag.hasErrors());
  EXPECT_EQ(diag.errorCount(), 1u);
}

TEST(Diag, CountOf) {
  DiagEngine diag;
  diag.warn(DiagCode::PotentialDataRace, {}, "a");
  diag.warn(DiagCode::PotentialDataRace, {}, "b");
  diag.warn(DiagCode::UnmatchedLock, {}, "c");
  EXPECT_EQ(diag.countOf(DiagCode::PotentialDataRace), 2u);
  EXPECT_EQ(diag.countOf(DiagCode::UnmatchedUnlock), 0u);
}

TEST(Diag, Formatting) {
  Diagnostic d{DiagSeverity::Warning, DiagCode::InconsistentLocking,
               {12, 3}, "msg"};
  EXPECT_EQ(d.str(), "warning [inconsistent-locking] 12:3: msg");
  Diagnostic noLoc{DiagSeverity::Error, DiagCode::SyntaxError, {}, "bad"};
  EXPECT_EQ(noLoc.str(), "error [syntax-error] bad");
}

TEST(Diag, ClearResets) {
  DiagEngine diag;
  diag.error(DiagCode::SyntaxError, {}, "x");
  diag.clear();
  EXPECT_FALSE(diag.hasErrors());
  EXPECT_TRUE(diag.diagnostics().empty());
}

}  // namespace
}  // namespace cssame
