// Unit tests for CSCC constant propagation: lattice behavior, branch
// resolution, unreachable-code removal, π/φ meets, and IR rewriting.
#include <gtest/gtest.h>

#include "src/driver/pipeline.h"
#include "src/ir/printer.h"
#include "src/ir/verify.h"
#include "src/opt/cscc.h"
#include "src/parser/parser.h"

namespace cssame::opt {
namespace {

std::string optimize(const char* src, ConstPropStats* statsOut = nullptr,
                     bool cssame = true) {
  ir::Program prog = parser::parseOrDie(src);
  driver::Compilation c =
      driver::analyze(prog, {.enableCssame = cssame, .warnings = false});
  ConstPropStats stats = propagateConstants(c);
  if (statsOut != nullptr) *statsOut = stats;
  EXPECT_TRUE(ir::verify(prog).empty());
  return ir::printProgram(prog);
}

TEST(Cscc, SimpleFolding) {
  const std::string text = optimize("int a, b; a = 2; b = a * 3 + 1;");
  EXPECT_NE(text.find("b = 7"), std::string::npos) << text;
}

TEST(Cscc, EntryValueIsZero) {
  const std::string text = optimize("int a, b; b = a + 5;");
  EXPECT_NE(text.find("b = 5"), std::string::npos) << text;
}

TEST(Cscc, ConstantIfFlattened) {
  ConstPropStats stats;
  const std::string text = optimize(
      "int a, b; a = 1; if (a > 0) { b = 10; } else { b = 20; } print(b);",
      &stats);
  EXPECT_EQ(stats.branchesResolved, 1u);
  EXPECT_NE(text.find("b = 10"), std::string::npos) << text;
  EXPECT_EQ(text.find("b = 20"), std::string::npos) << text;
  EXPECT_EQ(text.find("if"), std::string::npos) << text;
}

TEST(Cscc, ConstantIfFalseTakesElse) {
  const std::string text = optimize(
      "int a, b; a = 0; if (a > 0) { b = 10; } else { b = 20; } print(b);");
  EXPECT_NE(text.find("b = 20"), std::string::npos);
  EXPECT_EQ(text.find("b = 10"), std::string::npos);
}

TEST(Cscc, WhileFalseRemoved) {
  ConstPropStats stats;
  const std::string text =
      optimize("int a, b; a = 0; while (a > 0) { b = 1; } print(b);", &stats);
  EXPECT_EQ(text.find("while"), std::string::npos) << text;
  EXPECT_GE(stats.unreachableRemoved, 1u);
}

TEST(Cscc, WhileWithUnknownBoundKept) {
  const std::string text =
      optimize("int a, b; b = f(0); while (b > 0) { b = b - 1; } print(b);");
  EXPECT_NE(text.find("while"), std::string::npos);
}

TEST(Cscc, LoopVariantValueNotFolded) {
  const std::string text = optimize(
      "int i; i = 0; while (i < 5) { i = i + 1; } print(i);");
  // i merges 0 and i+1 at the header: not constant.
  EXPECT_NE(text.find("i = i + 1"), std::string::npos) << text;
}

TEST(Cscc, CallIsBottom) {
  const std::string text = optimize("int a, b; a = f(1); b = a + 1;");
  EXPECT_NE(text.find("b = a + 1"), std::string::npos);
}

TEST(Cscc, CallArgumentsStillFolded) {
  const std::string text = optimize("int a, b; a = 3; b = f(a + 1);");
  EXPECT_NE(text.find("b = f(4)"), std::string::npos) << text;
}

TEST(Cscc, DivisionByZeroFoldsToZero) {
  const std::string text = optimize("int a, b; a = 0; b = 7 / a; print(b);");
  EXPECT_NE(text.find("b = 0"), std::string::npos) << text;
}

TEST(Cscc, NestedConstantBranches) {
  const std::string text = optimize(R"(
    int a, b;
    a = 1;
    if (a > 0) {
      if (a > 2) { b = 1; } else { b = 2; }
    }
    print(b);
  )");
  EXPECT_NE(text.find("b = 2"), std::string::npos) << text;
  EXPECT_EQ(text.find("b = 1"), std::string::npos);
  EXPECT_EQ(text.find("if"), std::string::npos);
}

TEST(Cscc, PhiOfEqualConstantsFolds) {
  const std::string text = optimize(R"(
    int a, b, c;
    c = f(0);
    if (c > 0) { a = 7; } else { a = 7; }
    b = a + 1;
  )");
  EXPECT_NE(text.find("b = 8"), std::string::npos) << text;
}

TEST(Cscc, PhiOfDifferentConstantsIsBottom) {
  const std::string text = optimize(R"(
    int a, b, c;
    c = f(0);
    if (c > 0) { a = 7; } else { a = 8; }
    b = a + 1;
  )");
  EXPECT_NE(text.find("b = a + 1"), std::string::npos) << text;
}

TEST(Cscc, PiMeetAcrossThreads) {
  // Concurrent equal writes: the π meets 5 with 5 — still constant.
  const std::string text = optimize(R"(
    int a, b;
    a = 5;
    cobegin {
      thread { b = a + 1; }
      thread { a = 5; }
    }
    print(b);
  )");
  EXPECT_NE(text.find("b = 6"), std::string::npos) << text;
}

TEST(Cscc, PiMeetDifferentValuesBottom) {
  const std::string text = optimize(R"(
    int a, b;
    a = 5;
    cobegin {
      thread { b = a + 1; }
      thread { a = 9; }
    }
    print(b);
  )");
  EXPECT_NE(text.find("b = a + 1"), std::string::npos) << text;
}

TEST(Cscc, UnreachableThreadCodeBehindConstFalse) {
  ConstPropStats stats;
  const std::string text = optimize(R"(
    int a, b;
    cobegin {
      thread { if (0 > 1) { a = 1; } }
      thread { b = 2; }
    }
    print(b);
  )", &stats);
  EXPECT_EQ(text.find("a = 1"), std::string::npos) << text;
}

TEST(Cscc, CssameUnlocksLockedRegionFolding) {
  const char* src = R"(
    int a, b; lock L;
    cobegin {
      thread { lock(L); a = 4; b = a + 1; unlock(L); print(b); }
      thread { lock(L); a = 9; unlock(L); }
    }
  )";
  ConstPropStats with, without;
  const std::string textWith = optimize(src, &with, true);
  const std::string textWithout = optimize(src, &without, false);
  EXPECT_NE(textWith.find("b = 5"), std::string::npos) << textWith;
  EXPECT_NE(textWithout.find("b = a + 1"), std::string::npos) << textWithout;
  EXPECT_GT(with.usesReplaced, without.usesReplaced);
}

TEST(Cscc, AnalyzeOnlyDoesNotMutate) {
  ir::Program prog = parser::parseOrDie("int a, b; a = 1; b = a + 1;");
  const std::string before = ir::printProgram(prog);
  driver::Compilation c = driver::analyze(prog, {.warnings = false});
  ConstPropStats stats = analyzeConstants(c);
  EXPECT_EQ(ir::printProgram(prog), before);
  EXPECT_EQ(stats.constantDefs, 2u);
  EXPECT_GE(stats.usesReplaced, 1u);  // counted, not applied
}

TEST(Cscc, ComparisonChainsFold) {
  const std::string text = optimize(
      "int a, b; a = 3; b = (a > 1) + (a == 3) * 10 + (a != 3) * 100;");
  EXPECT_NE(text.find("b = 11"), std::string::npos) << text;
}

TEST(Cscc, NegativeNumbersAndUnary) {
  const std::string text = optimize("int a, b; a = -3; b = -a + !a;");
  EXPECT_NE(text.find("b = 3"), std::string::npos) << text;
}

}  // namespace
}  // namespace cssame::opt
