// Tests for the assert(e) statement: parsing and printing roundtrip,
// interpreter trap semantics (a failed assert halts every thread), the
// explorer's anyAssertFailure flag on schedule-dependent asserts, and
// the optimizer invariants (asserts are never dead code, never hoisted
// out of their critical section).
#include <gtest/gtest.h>

#include "src/driver/pipeline.h"
#include "src/interp/explore.h"
#include "src/interp/interp.h"
#include "src/ir/printer.h"
#include "src/ir/verify.h"
#include "src/opt/optimize.h"
#include "src/parser/parser.h"

namespace cssame {
namespace {

TEST(Assert, ParsePrintRoundtrip) {
  const char* src = "int x;\nx = 1;\nassert(x > 0);\nprint(x);\n";
  ir::Program p1 = parser::parseOrDie(src);
  EXPECT_TRUE(ir::verify(p1).empty());
  const std::string printed = ir::printProgram(p1);
  EXPECT_NE(printed.find("assert(x > 0);"), std::string::npos) << printed;
  ir::Program p2 = parser::parseOrDie(printed);
  EXPECT_EQ(ir::printProgram(p2), printed);
}

TEST(Assert, PassingAssertIsANoOp) {
  ir::Program prog =
      parser::parseOrDie("int x; x = 2; assert(x == 2); print(x);");
  const interp::RunResult r = interp::run(prog, {.seed = 1});
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.assertFailed);
  EXPECT_EQ(r.output, (std::vector<long long>{2}));
}

TEST(Assert, FailingAssertHaltsEveryThread) {
  // T0's assert always fails. On schedules where it runs before T1's
  // print, T1 is halted too and nothing is printed; on schedules where
  // the print ran first its output survives. Both outcomes must appear.
  ir::Program prog = parser::parseOrDie(
      "int x;"
      "cobegin {"
      "  thread T0 { assert(x == 1); }"
      "  thread T1 { x = 0; x = 0; x = 0; print(x); }"
      "}");
  interp::ExploreOptions opts;
  const interp::ExploreResult all = interp::exploreAllSchedules(prog, opts);
  ASSERT_TRUE(all.complete);
  EXPECT_TRUE(all.anyAssertFailure);
  EXPECT_TRUE(all.outputs.contains({}))
      << "some schedule runs the assert first and must suppress the print";
  EXPECT_TRUE(all.outputs.contains({0}))
      << "some schedule prints before the assert fires";
}

TEST(Assert, ScheduleDependentAssertFailure) {
  // assert(x) races with x = 1: it fails exactly on the schedules where
  // the assert runs first, so both outcomes must be observed.
  ir::Program prog = parser::parseOrDie(
      "int x;"
      "cobegin {"
      "  thread T0 { assert(x); }"
      "  thread T1 { x = 1; }"
      "}"
      "print(x);");
  const interp::ExploreResult all = interp::exploreAllSchedules(prog, {});
  ASSERT_TRUE(all.complete);
  EXPECT_TRUE(all.anyAssertFailure);
  // The assert-passing schedules reach the print.
  bool printed = false;
  for (const auto& out : all.outputs) printed |= !out.empty();
  EXPECT_TRUE(printed);
}

TEST(Assert, NeverRemovedByOptimizer) {
  // The assert reads a variable nothing else uses: a naive DCE would drop
  // the chain. Asserts are observable effects and must survive, along
  // with the definitions they use.
  ir::Program prog = parser::parseOrDie(
      "int x, y; x = 1; y = x + 1; assert(y == 2);");
  opt::optimizeProgram(prog);
  EXPECT_TRUE(ir::verify(prog).empty());
  const std::string printed = ir::printProgram(prog);
  EXPECT_NE(printed.find("assert"), std::string::npos) << printed;
  const interp::RunResult r = interp::run(prog, {.seed = 1});
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.assertFailed) << printed;
}

TEST(Assert, StaysInsideItsCriticalSection) {
  // The assert only holds under L's mutual exclusion; LICM must not
  // hoist it out even though its operands are lock independent.
  ir::Program prog = parser::parseOrDie(
      "int x; lock L;"
      "cobegin {"
      "  thread T0 { lock(L); x = 1; assert(x == 1); x = 0; unlock(L); }"
      "  thread T1 { lock(L); x = 2; x = 0; unlock(L); }"
      "}");
  const interp::ExploreResult before = interp::exploreAllSchedules(prog, {});
  ASSERT_TRUE(before.complete);
  EXPECT_FALSE(before.anyAssertFailure);

  opt::optimizeProgram(prog);
  EXPECT_TRUE(ir::verify(prog).empty());
  const interp::ExploreResult after = interp::exploreAllSchedules(prog, {});
  ASSERT_TRUE(after.complete);
  EXPECT_FALSE(after.anyAssertFailure) << ir::printProgram(prog);
}

}  // namespace
}  // namespace cssame
