// Equivalence sweep for the memoized MHP/conflict fast path.
//
// The bitset implementation in src/analysis/concurrency.cc promises
// bit-identical results to the original definition-style algorithms
// (thread-path walks, all-pairs sweeps). This test holds it to that: a
// verbatim transcription of the pre-memoization code serves as the
// reference, and >= 100 generated workloads — random programs with and
// without events, lock-structured sweeps, the bank workload, the paper
// figures, and hand-written barrier programs — are checked for
//
//   * exact equality of every pairwise query (inConcurrentThreads,
//     orderedBefore, mayHappenInParallel, conflicting, divergenceOf),
//   * exact equality of the emitted Ecf/Emutex/Edsync edge sequences,
//     INCLUDING order — downstream passes (π placement, lockset joins)
//     iterate these in order, so order is part of the contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/analysis/concurrency.h"
#include "src/analysis/dominance.h"
#include "src/ir/expr.h"
#include "src/parser/parser.h"
#include "src/pfg/build.h"
#include "src/support/bitset.h"
#include "src/workload/generator.h"
#include "src/workload/paper_programs.h"

namespace cssame::analysis {
namespace {

// ---------------------------------------------------------------------------
// Reference implementation: a transcription of the original (pre-memoization)
// analysis. Path walks on every query, linear scans over set/wait nodes,
// all-pairs edge sweeps. Deliberately kept dumb and independent of the
// production tables.
// ---------------------------------------------------------------------------

class RefMhp {
 public:
  RefMhp(const pfg::Graph& graph, const Dominators& dom)
      : graph_(graph), dom_(dom) {
    for (const pfg::Node& n : graph.nodes()) {
      if (n.kind == pfg::NodeKind::Set) {
        setNodes_[n.syncStmt->sync].push_back(n.id);
      } else if (n.kind == pfg::NodeKind::Wait) {
        waitNodes_[n.syncStmt->sync].push_back(n.id);
      } else if (n.kind == pfg::NodeKind::Barrier) {
        if (n.threadPath.empty()) continue;
        const pfg::ThreadPathEntry& arm = n.threadPath.back();
        armBarriers_[ArmKey{arm.cobegin, arm.threadIndex}].push_back(n.id);
        const DynBitset& reach = reachableFrom(n.id);
        if (reach.test(n.id.index())) barrierDisabled_.insert(arm.cobegin);
      }
    }
  }

  [[nodiscard]] bool inConcurrentThreads(NodeId a, NodeId b) const {
    const pfg::ThreadPath& pa = graph_.node(a).threadPath;
    const pfg::ThreadPath& pb = graph_.node(b).threadPath;
    const std::size_t common = std::min(pa.size(), pb.size());
    for (std::size_t i = 0; i < common; ++i) {
      if (pa[i].cobegin != pb[i].cobegin) return false;
      if (pa[i].threadIndex != pb[i].threadIndex) return true;
    }
    return false;
  }

  [[nodiscard]] bool conflicting(NodeId a, NodeId b) const {
    return a != b && inConcurrentThreads(a, b);
  }

  [[nodiscard]] bool orderedBefore(NodeId a, NodeId b) const {
    for (const auto& [event, sets] : setNodes_) {
      auto waitsIt = waitNodes_.find(event);
      if (waitsIt == waitNodes_.end()) continue;
      bool aBeforeSet = false;
      for (NodeId s : sets) {
        if (dom_.dominates(a, s)) {
          aBeforeSet = true;
          break;
        }
      }
      if (!aBeforeSet) continue;
      for (NodeId w : waitsIt->second) {
        if (dom_.dominates(w, b)) return true;
      }
    }
    return false;
  }

  struct Divergence {
    StmtId cobegin;
    std::uint32_t armA = 0;
    std::uint32_t armB = 0;
  };

  [[nodiscard]] std::optional<Divergence> divergenceOf(NodeId a,
                                                       NodeId b) const {
    Divergence d;
    if (!divergence(a, b, &d.cobegin, &d.armA, &d.armB)) return std::nullopt;
    return d;
  }

  [[nodiscard]] bool mayHappenInParallel(NodeId a, NodeId b) const {
    if (a == b) return false;
    StmtId cobegin;
    std::uint32_t armA = 0, armB = 0;
    if (!divergence(a, b, &cobegin, &armA, &armB)) return false;
    if (orderedBefore(a, b) || orderedBefore(b, a)) return false;
    if (separatedByBarrier(a, b, cobegin, armA, armB)) return false;
    return true;
  }

 private:
  struct ArmKey {
    StmtId cobegin;
    std::uint32_t arm;
    bool operator<(const ArmKey& o) const {
      return cobegin.value() != o.cobegin.value()
                 ? cobegin.value() < o.cobegin.value()
                 : arm < o.arm;
    }
  };

  bool divergence(NodeId a, NodeId b, StmtId* cobegin, std::uint32_t* armA,
                  std::uint32_t* armB) const {
    const pfg::ThreadPath& pa = graph_.node(a).threadPath;
    const pfg::ThreadPath& pb = graph_.node(b).threadPath;
    const std::size_t common = std::min(pa.size(), pb.size());
    for (std::size_t i = 0; i < common; ++i) {
      if (pa[i].cobegin != pb[i].cobegin) return false;
      if (pa[i].threadIndex != pb[i].threadIndex) {
        *cobegin = pa[i].cobegin;
        *armA = pa[i].threadIndex;
        *armB = pb[i].threadIndex;
        return true;
      }
    }
    return false;
  }

  bool separatedByBarrier(NodeId a, NodeId b, StmtId cobegin,
                          std::uint32_t armA, std::uint32_t armB) const {
    if (barrierDisabled_.contains(cobegin)) return false;
    auto barriersDominating = [&](NodeId n, std::uint32_t arm) {
      std::size_t count = 0;
      auto it = armBarriers_.find(ArmKey{cobegin, arm});
      if (it == armBarriers_.end()) return count;
      for (NodeId bar : it->second)
        if (dom_.dominates(bar, n)) ++count;
      return count;
    };
    auto barriersReaching = [&](NodeId n, std::uint32_t arm) {
      std::size_t count = 0;
      auto it = armBarriers_.find(ArmKey{cobegin, arm});
      if (it == armBarriers_.end()) return count;
      for (NodeId bar : it->second)
        if (reachableFrom(bar).test(n.index())) ++count;
      return count;
    };
    if (barriersDominating(a, armA) > barriersReaching(b, armB)) return true;
    if (barriersDominating(b, armB) > barriersReaching(a, armA)) return true;
    return false;
  }

  const DynBitset& reachableFrom(NodeId from) const {
    auto it = reachCache_.find(from);
    if (it != reachCache_.end()) return it->second;
    DynBitset reach(graph_.size());
    std::vector<NodeId> work;
    for (NodeId s : graph_.node(from).succs) {
      if (!reach.test(s.index())) {
        reach.set(s.index());
        work.push_back(s);
      }
    }
    while (!work.empty()) {
      const NodeId cur = work.back();
      work.pop_back();
      for (NodeId s : graph_.node(cur).succs) {
        if (!reach.test(s.index())) {
          reach.set(s.index());
          work.push_back(s);
        }
      }
    }
    return reachCache_.emplace(from, std::move(reach)).first->second;
  }

  const pfg::Graph& graph_;
  const Dominators& dom_;
  std::unordered_map<SymbolId, std::vector<NodeId>> setNodes_;
  std::unordered_map<SymbolId, std::vector<NodeId>> waitNodes_;
  std::map<ArmKey, std::vector<NodeId>> armBarriers_;
  std::unordered_set<StmtId> barrierDisabled_;
  mutable std::unordered_map<NodeId, DynBitset> reachCache_;
};

/// Per-node shared accesses, transcribed from the original accessOf().
struct RefNodeAccess {
  std::vector<SymbolId> defs;
  std::vector<SymbolId> uses;
};

void refAddUnique(std::vector<SymbolId>& v, SymbolId s) {
  if (std::find(v.begin(), v.end(), s) == v.end()) v.push_back(s);
}

void refCollectExprUses(const ir::Expr& e, const ir::SymbolTable& syms,
                        std::vector<SymbolId>& uses) {
  ir::forEachExpr(e, [&](const ir::Expr& sub) {
    if (sub.kind == ir::ExprKind::VarRef && syms.isSharedVar(sub.var))
      refAddUnique(uses, sub.var);
  });
}

RefNodeAccess refAccessOf(const pfg::Node& n, const ir::SymbolTable& syms) {
  RefNodeAccess acc;
  for (const ir::Stmt* s : n.stmts) {
    if (s->expr) refCollectExprUses(*s->expr, syms, acc.uses);
    if (s->kind == ir::StmtKind::Assign && syms.isSharedVar(s->lhs))
      refAddUnique(acc.defs, s->lhs);
  }
  if (n.terminator != nullptr && n.terminator->expr)
    refCollectExprUses(*n.terminator->expr, syms, acc.uses);
  return acc;
}

struct RefEdges {
  std::vector<pfg::ConflictEdge> conflicts;
  std::vector<pfg::MutexEdge> mutexEdges;
  std::vector<pfg::DsyncEdge> dsyncEdges;
};

/// The original all-pairs edge construction, verbatim.
RefEdges refComputeEdges(const pfg::Graph& graph, const RefMhp& mhp) {
  RefEdges out;
  const ir::SymbolTable& syms = graph.program().symbols;

  std::vector<RefNodeAccess> access(graph.size());
  for (const pfg::Node& n : graph.nodes())
    if (n.kind == pfg::NodeKind::Block)
      access[n.id.index()] = refAccessOf(n, syms);

  for (const pfg::Node& d : graph.nodes()) {
    for (SymbolId v : access[d.id.index()].defs) {
      for (const pfg::Node& u : graph.nodes()) {
        if (!mhp.conflicting(d.id, u.id)) continue;
        const RefNodeAccess& ua = access[u.id.index()];
        const bool usesV =
            std::find(ua.uses.begin(), ua.uses.end(), v) != ua.uses.end();
        const bool defsV =
            std::find(ua.defs.begin(), ua.defs.end(), v) != ua.defs.end();
        if (usesV)
          out.conflicts.push_back(pfg::ConflictEdge{d.id, u.id, v, false});
        if (defsV)
          out.conflicts.push_back(pfg::ConflictEdge{d.id, u.id, v, true});
      }
    }
  }

  for (const pfg::Node& a : graph.nodes()) {
    if (a.kind != pfg::NodeKind::Lock) continue;
    for (const pfg::Node& b : graph.nodes()) {
      if (b.kind != pfg::NodeKind::Unlock) continue;
      if (a.syncStmt->sync != b.syncStmt->sync) continue;
      if (!mhp.mayHappenInParallel(a.id, b.id)) continue;
      out.mutexEdges.push_back(pfg::MutexEdge{a.id, b.id, a.syncStmt->sync});
    }
  }

  for (const pfg::Node& a : graph.nodes()) {
    if (a.kind != pfg::NodeKind::Set) continue;
    for (const pfg::Node& b : graph.nodes()) {
      if (b.kind != pfg::NodeKind::Wait) continue;
      if (a.syncStmt->sync != b.syncStmt->sync) continue;
      if (!mhp.inConcurrentThreads(a.id, b.id)) continue;
      out.dsyncEdges.push_back(pfg::DsyncEdge{a.id, b.id, a.syncStmt->sync});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Comparison driver
// ---------------------------------------------------------------------------

using ConflictKey = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                               bool>;

ConflictKey keyOf(const pfg::ConflictEdge& e) {
  return {e.from.value(), e.to.value(), e.var.value(), e.toIsDef};
}

/// Builds the PFG for `prog`, runs both the production fast path and the
/// reference, and asserts exact agreement on every query and edge list.
void checkEquivalence(ir::Program prog, const std::string& label) {
  SCOPED_TRACE(label);
  pfg::Graph graph = pfg::buildPfg(prog);
  const Dominators dom(graph, Dominators::Direction::Forward);

  const Mhp mhp(graph, dom);
  const RefMhp ref(graph, dom);

  // All-pairs query agreement.
  for (const pfg::Node& a : graph.nodes()) {
    for (const pfg::Node& b : graph.nodes()) {
      ASSERT_EQ(mhp.inConcurrentThreads(a.id, b.id),
                ref.inConcurrentThreads(a.id, b.id))
          << "inConcurrentThreads(" << a.id.value() << "," << b.id.value()
          << ")";
      ASSERT_EQ(mhp.orderedBefore(a.id, b.id), ref.orderedBefore(a.id, b.id))
          << "orderedBefore(" << a.id.value() << "," << b.id.value() << ")";
      ASSERT_EQ(mhp.conflicting(a.id, b.id), ref.conflicting(a.id, b.id))
          << "conflicting(" << a.id.value() << "," << b.id.value() << ")";
      ASSERT_EQ(mhp.mayHappenInParallel(a.id, b.id),
                ref.mayHappenInParallel(a.id, b.id))
          << "mayHappenInParallel(" << a.id.value() << "," << b.id.value()
          << ")";
      const auto dNew = mhp.divergenceOf(a.id, b.id);
      const auto dRef = ref.divergenceOf(a.id, b.id);
      ASSERT_EQ(dNew.has_value(), dRef.has_value())
          << "divergenceOf(" << a.id.value() << "," << b.id.value() << ")";
      if (dNew.has_value()) {
        ASSERT_EQ(dNew->cobegin, dRef->cobegin);
        ASSERT_EQ(dNew->armA, dRef->armA);
        ASSERT_EQ(dNew->armB, dRef->armB);
      }
    }
  }

  // Edge-sequence agreement (order included).
  computeSyncAndConflictEdges(graph, mhp);
  const RefEdges expect = refComputeEdges(graph, ref);

  ASSERT_EQ(graph.conflicts.size(), expect.conflicts.size());
  for (std::size_t i = 0; i < expect.conflicts.size(); ++i)
    ASSERT_EQ(keyOf(graph.conflicts[i]), keyOf(expect.conflicts[i]))
        << "conflict edge " << i;

  ASSERT_EQ(graph.mutexEdges.size(), expect.mutexEdges.size());
  for (std::size_t i = 0; i < expect.mutexEdges.size(); ++i) {
    ASSERT_EQ(graph.mutexEdges[i].lockNode, expect.mutexEdges[i].lockNode)
        << "mutex edge " << i;
    ASSERT_EQ(graph.mutexEdges[i].unlockNode, expect.mutexEdges[i].unlockNode);
    ASSERT_EQ(graph.mutexEdges[i].lockVar, expect.mutexEdges[i].lockVar);
  }

  ASSERT_EQ(graph.dsyncEdges.size(), expect.dsyncEdges.size());
  for (std::size_t i = 0; i < expect.dsyncEdges.size(); ++i) {
    ASSERT_EQ(graph.dsyncEdges[i].setNode, expect.dsyncEdges[i].setNode)
        << "dsync edge " << i;
    ASSERT_EQ(graph.dsyncEdges[i].waitNode, expect.dsyncEdges[i].waitNode);
    ASSERT_EQ(graph.dsyncEdges[i].eventVar, expect.dsyncEdges[i].eventVar);
  }
}

TEST(MhpEquivalence, RandomWorkloadSweep) {
  // 60 random programs: varying thread counts, event usage on half the
  // seeds (events exercise the orderedBefore bitsets), both determinate
  // and racy shapes.
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    workload::GeneratorConfig cfg;
    cfg.seed = seed;
    cfg.threads = 2 + static_cast<int>(seed % 3);
    cfg.sharedVars = 4;
    cfg.locks = 2;
    cfg.stmtsPerThread = 6 + static_cast<int>(seed % 5);
    cfg.useEvents = (seed % 2) == 0;
    cfg.determinate = (seed % 3) == 0;
    checkEquivalence(workload::generateRandom(cfg),
                     "generateRandom seed=" + std::to_string(seed));
  }
}

TEST(MhpEquivalence, LockStructuredSweep) {
  // 25 lock-structured workloads, including wide (8-thread) shapes that
  // stress the interned-context table.
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const int threads = 2 + static_cast<int>(seed % 7);
    const int regions = 1 + static_cast<int>(seed % 3);
    const double lockedFraction = 0.25 * static_cast<double>(seed % 5);
    checkEquivalence(
        workload::makeLockStructured(threads, regions, 4, lockedFraction,
                                     seed),
        "makeLockStructured seed=" + std::to_string(seed));
  }
}

TEST(MhpEquivalence, BankSweep) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed)
    checkEquivalence(workload::makeBank(3, 3, 4, seed),
                     "makeBank seed=" + std::to_string(seed));
}

TEST(MhpEquivalence, PaperFigures) {
  checkEquivalence(parser::parseOrDie(workload::figure1Source()), "figure1");
  checkEquivalence(parser::parseOrDie(workload::figure2Source()), "figure2");
  checkEquivalence(parser::parseOrDie(workload::figure5aSource()), "figure5a");
}

TEST(MhpEquivalence, BarrierPrograms) {
  // Hand-written barrier shapes: the generator never emits barriers, so
  // cover the phase-separation refinement and its loop-disabled escape
  // hatch explicitly.
  checkEquivalence(parser::parseOrDie(R"(
    int a; int b;
    cobegin {
      thread { a = 1; barrier; b = a; }
      thread { b = 2; barrier; a = b; }
    }
  )"),
                   "barrier two-phase");
  checkEquivalence(parser::parseOrDie(R"(
    int a; int b; int c;
    cobegin {
      thread { a = 1; barrier; b = 1; barrier; c = 1; }
      thread { c = 2; barrier; a = 2; barrier; b = 2; }
      thread { b = 3; barrier; c = 3; barrier; a = 3; }
    }
  )"),
                   "barrier three-phase three-thread");
  checkEquivalence(parser::parseOrDie(R"(
    int a; int i;
    cobegin {
      thread { i = 0; while (i < 3) { a = a + 1; barrier; i = i + 1; } }
      thread { i = 0; while (i < 3) { a = a + 2; barrier; i = i + 1; } }
    }
  )"),
                   "barrier in loop (refinement disabled)");
  checkEquivalence(parser::parseOrDie(R"(
    int a; int b; event e;
    cobegin {
      thread { a = 1; barrier; set(e); b = 1; }
      thread { wait(e); b = 2; barrier; a = 2; }
    }
  )"),
                   "barrier plus set/wait");
  checkEquivalence(parser::parseOrDie(R"(
    int a; int b;
    cobegin {
      thread {
        cobegin {
          thread { a = 1; barrier; b = 1; }
          thread { b = 2; barrier; a = 2; }
        }
      }
      thread { a = 3; }
    }
  )"),
                   "barrier in nested cobegin");
  checkEquivalence(parser::parseOrDie(R"(
    int a;
    cobegin {
      thread { if (a > 0) { barrier; } a = 1; }
      thread { barrier; a = 2; }
    }
  )"),
                   "conditional barrier");
}

}  // namespace
}  // namespace cssame::analysis
