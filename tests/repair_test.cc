// The synchronization repair engine: the line-edit patch model, the
// candidate lattice, and — the heart of the subsystem — the
// repair-then-verify contract (src/repair/verify.h): every fix the
// engine returns has already survived a full re-analysis (the target
// diagnostic is gone, nothing new appeared) and a full re-exploration
// (no race on the repaired variable, no deadlock, no behavior the
// original program could not produce). The sweep here re-checks those
// facts *independently* — it re-runs the analyses on the returned
// patched source rather than trusting the engine's own verdict — over
// hand litmus programs, the generated workload corpus, and a
// fault-injection round-trip (delete the locks from a correct program,
// repair it, confirm the explorer finds it race-free again).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/driver/pipeline.h"
#include "src/driver/runner.h"
#include "src/interp/explore.h"
#include "src/ir/printer.h"
#include "src/parser/parser.h"
#include "src/repair/patch.h"
#include "src/repair/repair.h"
#include "src/sanalysis/csan.h"
#include "src/sanalysis/tso.h"
#include "src/workload/generator.h"

namespace cssame::repair {
namespace {

// --- patch model -----------------------------------------------------

TEST(Patch, SplitLinesHandlesTerminators) {
  EXPECT_EQ(splitLines("a\nb\n"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(splitLines("a\nb"), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(splitLines("").empty());
}

TEST(Patch, IndentOfCopiesLeadingWhitespace) {
  const std::string src = "a;\n    b;\n\tc;\n";
  EXPECT_EQ(indentOf(src, 1), "");
  EXPECT_EQ(indentOf(src, 2), "    ");
  EXPECT_EQ(indentOf(src, 3), "\t");
  EXPECT_EQ(indentOf(src, 99), "");  // nonexistent line
}

TEST(Patch, ApplyEditsSweepsBottomUp) {
  // Anchors all refer to the ORIGINAL text regardless of edit order.
  const std::string src = "one\ntwo\nthree\n";
  std::vector<LineEdit> edits;
  edits.push_back({3, EditKind::InsertAfter, "after-three"});
  edits.push_back({1, EditKind::InsertBefore, "before-one"});
  edits.push_back({2, EditKind::ReplaceLine, "TWO"});
  EXPECT_EQ(applyEdits(src, edits),
            "before-one\none\nTWO\nthree\nafter-three\n");
}

TEST(Patch, ApplyEditsSameAnchorKeepsRecordedOrder) {
  const std::string src = "x\n";
  std::vector<LineEdit> edits;
  edits.push_back({1, EditKind::InsertBefore, "first"});
  edits.push_back({1, EditKind::InsertBefore, "second"});
  EXPECT_EQ(applyEdits(src, edits), "first\nsecond\nx\n");
}

TEST(Patch, ApplyEditsDeleteAndClamp) {
  const std::string src = "a\nb\n";
  std::vector<LineEdit> del;
  del.push_back({2, EditKind::DeleteLine, ""});
  EXPECT_EQ(applyEdits(src, del), "a\n");
  std::vector<LineEdit> far;
  far.push_back({50, EditKind::InsertAfter, "tail"});  // clamps to last
  EXPECT_EQ(applyEdits(src, far), "a\nb\ntail\n");
}

TEST(Patch, DiffLinesIsMinimalAndOrdered) {
  const std::vector<DiffLine> d = diffLines("a\nb\nc\n", "a\nX\nc\nd\n");
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0].op, '-');
  EXPECT_EQ(d[0].oldLine, 2u);
  EXPECT_EQ(d[0].text, "b");
  EXPECT_EQ(d[1].op, '+');
  EXPECT_EQ(d[1].newLine, 2u);
  EXPECT_EQ(d[1].text, "X");
  EXPECT_EQ(d[2].op, '+');
  EXPECT_EQ(d[2].newLine, 4u);
  EXPECT_EQ(d[2].text, "d");
  EXPECT_TRUE(diffLines("same\n", "same\n").empty());
}

TEST(Patch, DiffRoundTripsThroughApplyEdits) {
  // A diff of source -> applyEdits(source, e) mentions exactly the
  // inserted lines when the edits only insert.
  const std::string src = "int x;\ncobegin {\n  thread A { x = 1; }\n}\n";
  std::vector<LineEdit> edits;
  edits.push_back({3, EditKind::InsertBefore, "  // guard"});
  const std::string patched = applyEdits(src, edits);
  const std::vector<DiffLine> d = diffLines(src, patched);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].op, '+');
  EXPECT_EQ(d[0].text, "  // guard");
}

// --- target parsing --------------------------------------------------

TEST(FixTargetParsing, AcceptsShortAndDiagCodeNames) {
  FixTarget t = FixTarget::All;
  EXPECT_TRUE(parseFixTarget("all", t));
  EXPECT_EQ(t, FixTarget::All);
  EXPECT_TRUE(parseFixTarget("race", t));
  EXPECT_EQ(t, FixTarget::Race);
  EXPECT_TRUE(parseFixTarget("PotentialDataRace", t));
  EXPECT_EQ(t, FixTarget::Race);
  EXPECT_TRUE(parseFixTarget("may-alias", t));
  EXPECT_EQ(t, FixTarget::MayAlias);
  EXPECT_TRUE(parseFixTarget("MayAliasRace", t));
  EXPECT_EQ(t, FixTarget::MayAlias);
  EXPECT_TRUE(parseFixTarget("tso", t));
  EXPECT_EQ(t, FixTarget::Tso);
  EXPECT_TRUE(parseFixTarget("MutualExclusionNotJustifiedUnderTSO", t));
  EXPECT_EQ(t, FixTarget::Tso);
  EXPECT_TRUE(parseFixTarget("fence", t));
  EXPECT_EQ(t, FixTarget::Fence);
  EXPECT_TRUE(parseFixTarget("FenceRedundant", t));
  EXPECT_EQ(t, FixTarget::Fence);
}

TEST(FixTargetParsing, RejectsUnknownNames) {
  FixTarget t = FixTarget::All;
  EXPECT_FALSE(parseFixTarget("", t));
  EXPECT_FALSE(parseFixTarget("races", t));
  EXPECT_FALSE(parseFixTarget("ALL", t));
  EXPECT_FALSE(parseFixTarget("deadlock", t));
  EXPECT_FALSE(parseFixTarget("potential-data-race", t));  // kebab != code
}

// --- independent re-verification helpers -----------------------------

/// Analyzes `source` and returns the rendered csan+tso diagnostics plus
/// the count of errors/warnings per code — a from-scratch check that
/// does NOT reuse anything the repair engine computed.
struct Recheck {
  bool ok = false;
  std::size_t races = 0;       // PotentialDataRace + MayAliasRace
  std::size_t tso = 0;         // MutualExclusionNotJustifiedUnderTSO
  std::size_t fenceLints = 0;  // FenceRedundant
  std::size_t lockLints = 0;   // Overwide/Redundant mutex lints
  std::set<std::string> raced;  // explorer (SC) raced variable names
  bool deadlock = false;
  bool complete = false;
  std::set<std::string> outputs;
};

Recheck recheck(const std::string& source) {
  Recheck r;
  parser::ParseResult pr = parser::parseChecked(source);
  if (!pr.ok()) return r;
  driver::Compilation comp = driver::analyze(pr.program);
  DiagEngine tool;
  (void)sanalysis::runCsan(comp, tool);
  (void)sanalysis::runTso(comp, tool);
  const auto count = [&](DiagCode code) {
    std::size_t n = 0;
    for (const Diagnostic& d : comp.diag().diagnostics())
      if (d.code == code) ++n;
    for (const Diagnostic& d : tool.diagnostics())
      if (d.code == code) ++n;
    return n;
  };
  r.races = count(DiagCode::PotentialDataRace) + count(DiagCode::MayAliasRace);
  r.tso = count(DiagCode::MutualExclusionNotJustifiedUnderTSO);
  r.fenceLints = count(DiagCode::FenceRedundant);
  r.lockLints = count(DiagCode::OverwideMutexBody) +
                count(DiagCode::RedundantMutexBody);
  interp::ExploreOptions eo;
  eo.maxSteps = 1u << 18;
  eo.maxStates = 1u << 16;
  eo.detectRaces = true;
  eo.dpor = true;
  const interp::ExploreResult ex = interp::exploreAllSchedules(pr.program, eo);
  for (SymbolId v : ex.racedVars) r.raced.insert(pr.program.symbols.nameOf(v));
  r.deadlock = ex.anyDeadlock || ex.anyLockError;
  r.complete = ex.complete;
  for (const auto& seq : ex.outputs) {
    std::string joined;
    for (const auto& v : seq) joined += std::to_string(v) + "\n";
    r.outputs.insert(joined);
  }
  r.ok = true;
  return r;
}

// --- hand litmus: repair-then-verify ---------------------------------

TEST(Repair, ExtendsExistingLockProtocol) {
  const std::string src = R"(int n;
lock L;
cobegin {
  thread A {
    lock(L);
    n = n + 1;
    unlock(L);
  }
  thread B {
    n = n + 1;
  }
}
print(n);
)";
  const RepairResult r = repairSource(src, FixTarget::All);
  ASSERT_EQ(r.status, RepairStatus::Fixed) << renderFixReport(r, FixTarget::All);
  ASSERT_EQ(r.applied.size(), 1u);
  // The winning candidate reuses L, not a fresh lock.
  EXPECT_NE(r.applied[0].candidate.find("existing lock 'L'"), std::string::npos)
      << r.applied[0].candidate;
  EXPECT_EQ(r.stats.freshLockFallbacks, 0u);
  EXPECT_TRUE(r.finalRaceFree);
  EXPECT_TRUE(r.finalDeadlockFree);

  // Independent re-verification of the returned source.
  const Recheck after = recheck(r.patchedSource);
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.races, 0u);
  EXPECT_EQ(after.lockLints, 0u);  // minimality: no overwide/redundant lint
  EXPECT_TRUE(after.raced.empty());
  EXPECT_FALSE(after.deadlock);
  // The fix may only remove interleavings: the patched outputs must be a
  // subset of the original's.
  const Recheck before = recheck(src);
  for (const std::string& o : after.outputs)
    EXPECT_TRUE(before.outputs.count(o)) << "new output: " << o;
}

TEST(Repair, FallsBackToFreshLock) {
  const std::string src = R"(int total;
cobegin {
  thread A {
    total = total + 2;
  }
  thread B {
    total = total + 3;
  }
}
print(total);
)";
  const RepairResult r = repairSource(src, FixTarget::All);
  ASSERT_EQ(r.status, RepairStatus::Fixed) << renderFixReport(r, FixTarget::All);
  EXPECT_EQ(r.stats.freshLockFallbacks, 1u);
  EXPECT_NE(r.patchedSource.find("lock __fix0;"), std::string::npos);
  const Recheck after = recheck(r.patchedSource);
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.races, 0u);
  EXPECT_EQ(after.lockLints, 0u);
  EXPECT_TRUE(after.raced.empty());
  EXPECT_FALSE(after.deadlock);
  // Both orders still reachable; the sum is always 5.
  EXPECT_EQ(after.outputs.size(), 1u);
  EXPECT_TRUE(after.outputs.count("5\n"));
}

TEST(Repair, ReportsNoSafeFixForLoopConditionAccess) {
  // The consumer's access is the while condition: not a wrappable
  // single-line statement, so the lattice is empty and the engine must
  // answer "no safe fix" instead of guessing.
  const std::string src = R"(int flag;
cobegin {
  thread P {
    flag = 1;
  }
  thread C {
    while (flag == 0) { }
  }
}
print(flag);
)";
  const RepairResult r = repairSource(src, FixTarget::All);
  EXPECT_EQ(r.status, RepairStatus::NoSafeFix);
  EXPECT_TRUE(r.applied.empty());
  ASSERT_EQ(r.unfixed.size(), 1u);
  EXPECT_EQ(r.unfixed[0].candidatesTried, 0u);
  // The source comes back untouched.
  EXPECT_EQ(r.patchedSource, src);
  EXPECT_TRUE(r.diff.empty());
}

TEST(Repair, PartialWhenOnlySomeTargetsAreFixable) {
  const std::string src = R"(int data, flag;
cobegin {
  thread P {
    data = 42;
    flag = 1;
  }
  thread C {
    while (flag == 0) { }
    print(data);
  }
}
)";
  const RepairResult r = repairSource(src, FixTarget::All);
  EXPECT_EQ(r.status, RepairStatus::Partial);
  EXPECT_EQ(r.applied.size(), 1u);
  EXPECT_EQ(r.unfixed.size(), 1u);
  // The fixable race (data) is gone from the patched program; the
  // handshake race (flag) remains.
  const Recheck after = recheck(r.patchedSource);
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.raced.count("data"), 0u);
  EXPECT_EQ(after.raced.count("flag"), 1u);
}

TEST(Repair, CleanProgramNeedsNothing) {
  const std::string src = R"(int n;
lock L;
cobegin {
  thread A {
    lock(L);
    n = n + 1;
    unlock(L);
  }
  thread B {
    lock(L);
    n = n + 2;
    unlock(L);
  }
}
print(n);
)";
  const RepairResult r = repairSource(src, FixTarget::All);
  EXPECT_EQ(r.status, RepairStatus::Clean);
  EXPECT_TRUE(r.applied.empty());
  EXPECT_TRUE(r.unfixed.empty());
  EXPECT_EQ(r.patchedSource, src);
  EXPECT_EQ(r.stats.candidatesTried, 0u);
}

TEST(Repair, ParseErrorYieldsErrorStatus) {
  const RepairResult r = repairSource("int x; cobegin {", FixTarget::All);
  EXPECT_EQ(r.status, RepairStatus::Error);
  EXPECT_FALSE(r.error.empty());
}

TEST(Repair, TargetFilterRestrictsTheSweep) {
  // A program with both a race and TSO witnesses: --fix=tso must leave
  // the race alone.
  const std::string src = R"(int a, b, data;
cobegin {
  thread T0 {
    a = 1;
    while (b == 1) { }
    data = data + 1;
  }
  thread T1 {
    b = 1;
    while (a == 1) { }
    data = data + 1;
  }
}
print(data);
)";
  const RepairResult r = repairSource(src, FixTarget::Tso);
  for (const AppliedFix& f : r.applied)
    EXPECT_NE(f.target.find("mutual-exclusion-not-justified-under-tso"),
              std::string::npos)
        << f.target;
  // The data race survives untouched under the tso filter.
  if (!r.applied.empty()) {
    const Recheck after = recheck(r.patchedSource);
    ASSERT_TRUE(after.ok);
    EXPECT_GT(after.races, 0u);
  }
}

// --- weak memory: multi-fence convergence and fence removal ----------

TEST(Repair, PetersonConvergesToFencedVariant) {
  // Peterson needs one fence per thread: no single candidate restores
  // TSO soundness, so this exercises the iterative monotone-progress
  // loop end to end. The final program must be statically quiet and
  // dynamically TSO-equivalent to SC.
  const std::string src = R"(int flag0, flag1, turn, data;
cobegin {
  thread T0 {
    flag0 = 1;
    turn = 1;
    while (flag1 == 1 && turn == 1) { }
    data = data + 1;
    flag0 = 0;
  }
  thread T1 {
    flag1 = 1;
    turn = 0;
    while (flag0 == 1 && turn == 0) { }
    data = data + 1;
    flag1 = 0;
  }
}
print(data);
)";
  const RepairResult r = repairSource(src, FixTarget::Tso);
  ASSERT_EQ(r.status, RepairStatus::Fixed) << renderFixReport(r, FixTarget::Tso);
  EXPECT_GE(r.applied.size(), 2u);  // at least one fence per thread
  EXPECT_TRUE(r.finalTsoChecked);
  EXPECT_TRUE(r.finalTsoJustified);
  const Recheck after = recheck(r.patchedSource);
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.tso, 0u);
  EXPECT_EQ(after.fenceLints, 0u);  // minimality: no redundant fence added
}

TEST(Repair, RemovesRedundantFence) {
  const std::string src = R"(int x, y;
lock L;
cobegin {
  thread A {
    fence;
    lock(L);
    x = 1;
    unlock(L);
  }
  thread B {
    lock(L);
    y = x;
    unlock(L);
  }
}
print(y);
)";
  const RepairResult r = repairSource(src, FixTarget::Fence);
  ASSERT_EQ(r.status, RepairStatus::Fixed)
      << renderFixReport(r, FixTarget::Fence);
  ASSERT_EQ(r.diff.size(), 1u);
  EXPECT_EQ(r.diff[0].op, '-');
  EXPECT_EQ(r.patchedSource.find("fence;"), std::string::npos);
  const Recheck after = recheck(r.patchedSource);
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.fenceLints, 0u);
  // Removal is behavior-preserving: same outputs as the original.
  const Recheck before = recheck(src);
  EXPECT_EQ(after.outputs, before.outputs);
}

// --- generated corpus sweep ------------------------------------------

TEST(Repair, GeneratedCorpusEveryReturnedFixReverifies) {
  int fixed = 0, partial = 0, clean = 0, nofix = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    workload::GeneratorConfig cfg;
    cfg.seed = seed;
    cfg.threads = 2;
    cfg.sharedVars = 2 + static_cast<int>(seed % 2);
    cfg.locks = 1;
    cfg.stmtsPerThread = 3;
    cfg.maxDepth = 0;
    cfg.branchProb = 0.0;
    cfg.loopProb = 0.0;
    // Mostly-unlocked shared accesses: a racy corpus by construction.
    cfg.lockedFraction = seed % 3 == 0 ? 0.5 : 0.0;
    cfg.determinate = false;
    ir::Program p = workload::generateRandom(cfg);
    const std::string src = ir::printProgram(p);

    RepairLimits limits;
    limits.maxIterations = 8;
    const RepairResult r = repairSource(src, FixTarget::All, limits);
    ASSERT_NE(r.status, RepairStatus::Error)
        << "seed " << seed << ": " << r.error << "\n" << src;
    switch (r.status) {
      case RepairStatus::Fixed: ++fixed; break;
      case RepairStatus::Partial: ++partial; break;
      case RepairStatus::Clean: ++clean; break;
      default: ++nofix; break;
    }
    if (r.applied.empty()) continue;

    // Independent re-verification of every returned patch: races the
    // engine claims fixed must be gone, nothing new may appear, and the
    // explorer must agree with the engine's own final verdict.
    const Recheck before = recheck(src);
    const Recheck after = recheck(r.patchedSource);
    ASSERT_TRUE(after.ok) << "seed " << seed;
    bool fixedARace = false;
    for (const AppliedFix& f : r.applied)
      if (f.target.find("-race]") != std::string::npos) fixedARace = true;
    if (fixedARace) {
      EXPECT_LT(after.races, before.races) << "seed " << seed;
    } else {
      EXPECT_LE(after.races, before.races) << "seed " << seed;
    }
    EXPECT_LE(after.lockLints, before.lockLints) << "seed " << seed;
    EXPECT_FALSE(after.deadlock) << "seed " << seed;
    if (before.complete && after.complete) {
      for (const std::string& o : after.outputs)
        EXPECT_TRUE(before.outputs.count(o))
            << "seed " << seed << " new output: " << o;
      if (r.status == RepairStatus::Fixed) {
        EXPECT_TRUE(after.raced.empty())
            << "seed " << seed << " still races after Fixed verdict";
      }
    }
  }
  // The corpus must actually exercise the engine, not degenerate into
  // all-clean or all-unfixable.
  EXPECT_GT(fixed + partial, 0);
}

// --- fault-injection round-trip --------------------------------------

TEST(Repair, RestoresDeletedLockProtection) {
  // Start from a correct locked program, textually delete the lock and
  // unlock statements (the "fault"), repair, and confirm the explorer
  // finds the result race-free again — the round trip that shows repair
  // undoes exactly the class of damage the mutation introduced.
  const std::string correct = R"(int n;
lock L;
cobegin {
  thread A {
    lock(L);
    n = n + 1;
    unlock(L);
  }
  thread B {
    lock(L);
    n = n + 2;
    unlock(L);
  }
}
print(n);
)";
  const Recheck healthy = recheck(correct);
  ASSERT_TRUE(healthy.ok);
  ASSERT_TRUE(healthy.raced.empty());

  // Delete thread B's lock/unlock lines — a lost-protection fault.
  std::vector<LineEdit> fault;
  fault.push_back({10, EditKind::DeleteLine, ""});
  fault.push_back({12, EditKind::DeleteLine, ""});
  const std::string broken = applyEdits(correct, fault);
  ASSERT_EQ(broken.find("unlock(L);", broken.find("thread B")),
            std::string::npos)
      << "fault injection failed to delete B's unlock:\n" << broken;
  const Recheck sick = recheck(broken);
  ASSERT_TRUE(sick.ok);
  ASSERT_EQ(sick.raced.count("n"), 1u) << "fault did not introduce a race";

  const RepairResult r = repairSource(broken, FixTarget::All);
  ASSERT_EQ(r.status, RepairStatus::Fixed) << renderFixReport(r, FixTarget::All);
  const Recheck repaired = recheck(r.patchedSource);
  ASSERT_TRUE(repaired.ok);
  EXPECT_TRUE(repaired.raced.empty());
  EXPECT_EQ(repaired.races, 0u);
  EXPECT_FALSE(repaired.deadlock);
  // Same single output as the healthy original: the protocol is back.
  EXPECT_EQ(repaired.outputs, healthy.outputs);
}

// --- driver integration ----------------------------------------------

TEST(Repair, RunSourceWiresFixIntoTheSharedDriver) {
  driver::RunOptions o;
  o.doFix = true;
  o.fixTarget = "all";
  o.doStats = true;
  const driver::RunOutput out = driver::runSource(
      "int t;\ncobegin {\n  thread A {\n    t = 1;\n  }\n  thread B {\n"
      "    t = 2;\n  }\n}\n",
      "fix.cp", o);
  EXPECT_EQ(out.code, 0) << out.err;
  EXPECT_NE(out.out.find("fix: status: fixed"), std::string::npos) << out.out;
  EXPECT_NE(out.out.find("fix: patched program:"), std::string::npos);
  EXPECT_NE(out.out.find("repair:"), std::string::npos);  // --stats line
}

TEST(Repair, RunSourceNoSafeFixExitsNonzero) {
  driver::RunOptions o;
  o.doFix = true;
  const driver::RunOutput out = driver::runSource(
      "int f;\ncobegin {\n  thread P { f = 1; }\n  thread C { while (f == 0) "
      "{ } }\n}\n",
      "nofix.cp", o);
  EXPECT_EQ(out.code, 1);
  EXPECT_NE(out.out.find("fix: status: no-safe-fix"), std::string::npos)
      << out.out;
}

TEST(Repair, CacheKeySeparatesFixRuns) {
  driver::RunOptions a, b;
  a.doFix = false;
  b.doFix = true;
  EXPECT_NE(a.cacheKey(), b.cacheKey());
  driver::RunOptions c = b;
  c.fixTarget = "race";
  EXPECT_NE(b.cacheKey(), c.cacheKey());
  // v5 keys: a fix run can never collide with any v4-era read key.
  EXPECT_EQ(a.cacheKey().rfind("v5:", 0), 0u) << a.cacheKey();
}

}  // namespace
}  // namespace cssame::repair
