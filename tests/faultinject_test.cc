// The fault-injection harness: proves the hardened pipeline *diagnoses*
// rather than crashes, across thousands of seeds.
//
// Three attack surfaces:
//   1. Mutated workloads — seeded structural mutations (wrong-kind
//      symbols, deleted statements, swapped operands, branch/loop flips)
//      pushed through tryAnalyze, the checked optimizer and the budgeted
//      interpreter. Every outcome must be either success or a structured
//      Fault; hangs are impossible because every engine is budgeted.
//   2. Injected pass faults — the FaultInjector corrupts the IR right
//      after a chosen optimization pass; per-pass verification must catch
//      the corruption and attribute it to exactly that pass.
//   3. Injected pass crashes — the injector throws from inside the pass
//      boundary; the optimizer must contain the exception and name the
//      pass, never terminate the process.
//   4. Mutated workloads under the parallel explorer — the survivors of
//      surface 1 are also exhaustively explored with workers > 1 on a
//      shared pool, with tight budgets: the parallel frontier sweep must
//      end gracefully on hostile shapes AND return exactly the serial
//      result (its determinism contract does not get to assume
//      well-behaved input).
#include <gtest/gtest.h>

#include "src/driver/pipeline.h"
#include "src/interp/explore.h"
#include "src/interp/interp.h"
#include "src/ir/verify.h"
#include "src/opt/optimize.h"
#include "src/support/faultinject.h"
#include "src/support/threadpool.h"
#include "src/workload/generator.h"

namespace cssame {
namespace {

/// A small generator workload whose shape varies with the seed.
ir::Program makeWorkload(std::uint64_t seed) {
  workload::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.threads = 2 + static_cast<int>(seed % 2);
  cfg.sharedVars = 3 + static_cast<int>(seed % 3);
  cfg.locks = 1 + static_cast<int>(seed % 2);
  cfg.stmtsPerThread = 6;
  cfg.maxDepth = static_cast<int>(seed % 3);
  cfg.branchProb = 0.3;
  cfg.loopProb = 0.15;
  cfg.determinate = seed % 2 == 0;
  cfg.useEvents = seed % 7 == 0;
  // A slice of the seeds exercises the weak-memory grammar (fence,
  // atomic_store/atomic_load) so mutation and corruption sweep it too.
  cfg.fenceProb = seed % 3 == 0 ? 0.15 : 0.0;
  cfg.atomicFraction = seed % 5 == 0 ? 0.4 : 0.0;
  return workload::generateRandom(cfg);
}

TEST(FaultInjection, MutatedWorkloadsAreDiagnosedNeverCrash) {
  int analyzed = 0, rejected = 0, optimized = 0;
  for (std::uint64_t seed = 1; seed <= 600; ++seed) {
    ir::Program p = makeWorkload(seed);
    const std::vector<std::string> mutations =
        support::mutateProgram(p, seed * 1315423911ull);
    ASSERT_FALSE(mutations.empty() && p.size() == 0) << "seed " << seed;

    DiagEngine diag;
    Expected<driver::Compilation> comp =
        driver::tryAnalyze(p, {.verifyEachPass = true}, &diag);
    if (!comp.ok()) {
      // Structured rejection: a fault with a kind, a stage and a message,
      // mirrored into the DiagEngine.
      ++rejected;
      EXPECT_NE(comp.fault().kind, FaultKind::None) << "seed " << seed;
      EXPECT_FALSE(comp.fault().message.empty()) << "seed " << seed;
      EXPECT_TRUE(diag.hasErrors()) << "seed " << seed;
      continue;
    }
    ++analyzed;

    // Survivors are structurally valid: the full checked optimizer and the
    // budgeted interpreter must hold up (mutations may have created spin
    // loops — the step budget bounds them).
    opt::OptimizeResult result = opt::optimizeProgramChecked(
        p, {.maxIterations = 2, .verifyEachPass = true});
    if (result.ok()) {
      ++optimized;
      EXPECT_TRUE(ir::verify(p).empty()) << "seed " << seed;
    } else {
      EXPECT_FALSE(result.status.fault().pass.empty()) << "seed " << seed;
    }

    interp::RunResult run =
        interp::run(p, {.seed = seed, .maxSteps = 20000});
    EXPECT_TRUE(run.completed || run.deadlocked ||
                run.budgetExceeded != support::BudgetKind::None)
        << "seed " << seed;
  }
  // The mutation engine must actually exercise both outcomes.
  EXPECT_GT(analyzed, 50);
  EXPECT_GT(rejected, 50);
  EXPECT_GT(optimized, 10);
}

TEST(FaultInjection, MutatedWorkloadsExploreInParallelDeterministically) {
  support::ThreadPool pool(4);
  int explored = 0;
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    ir::Program p = makeWorkload(seed);
    (void)support::mutateProgram(p, seed * 2654435761ull);
    if (!ir::verify(p).empty()) continue;  // surface 1 covers rejection

    interp::ExploreOptions opts;
    opts.maxSteps = 4096;
    opts.maxStates = 1024;
    opts.maxDepthPerRun = 256;
    opts.detectRaces = true;
    opts.workers = 1;
    const interp::ExploreResult serial = interp::exploreAllSchedules(p, opts);
    EXPECT_TRUE(serial.complete ||
                serial.budgetExceeded != support::BudgetKind::None)
        << "seed " << seed;

    const interp::ExploreResult parallel =
        interp::exploreAllSchedules(p, opts, pool);
    EXPECT_EQ(serial.outputs, parallel.outputs) << "seed " << seed;
    EXPECT_EQ(serial.complete, parallel.complete) << "seed " << seed;
    EXPECT_EQ(serial.budgetExceeded, parallel.budgetExceeded)
        << "seed " << seed;
    EXPECT_EQ(serial.anyDeadlock, parallel.anyDeadlock) << "seed " << seed;
    EXPECT_EQ(serial.anyLockError, parallel.anyLockError) << "seed " << seed;
    EXPECT_EQ(serial.statesExplored, parallel.statesExplored)
        << "seed " << seed;
    EXPECT_EQ(serial.racedVars, parallel.racedVars) << "seed " << seed;
    ++explored;
  }
  // Mutations leave plenty of structurally-valid programs to explore.
  EXPECT_GT(explored, 40);
}

TEST(FaultInjection, InjectedIrCorruptionIsAttributedToThePass) {
  auto& injector = support::FaultInjector::instance();
  int fired = 0, attributed = 0;
  for (std::uint64_t seed = 1; seed <= 360; ++seed) {
    ir::Program p = makeWorkload(seed);
    injector.arm({.seed = seed,
                  .fireAtSite = static_cast<int>(seed % 6),
                  .mode = support::FaultMode::CorruptIr});
    opt::OptimizeResult result = opt::optimizeProgramChecked(
        p, {.maxIterations = 2, .verifyEachPass = true});
    const std::string firedAt = injector.firedAt();
    const std::string injected = injector.injected();
    injector.disarm();

    if (firedAt.empty() || injected.empty()) {
      // The pipeline ended before the chosen site, or this program offered
      // no applicable corruption — either way it must have run clean.
      EXPECT_TRUE(result.ok()) << "seed " << seed << ": "
                               << result.status.str();
      continue;
    }
    ++fired;
    ASSERT_FALSE(result.ok())
        << "seed " << seed << ": corruption '" << injected
        << "' after pass '" << firedAt << "' went undiagnosed";
    // The structured diagnostic names exactly the faulted pass.
    EXPECT_EQ(result.status.fault().pass, firedAt) << "seed " << seed;
    EXPECT_TRUE(result.diag.hasErrors()) << "seed " << seed;
    if (result.status.fault().pass == firedAt) ++attributed;
  }
  EXPECT_GT(fired, 100);
  EXPECT_EQ(fired, attributed);
}

TEST(FaultInjection, InjectedPassCrashIsContained) {
  auto& injector = support::FaultInjector::instance();
  int fired = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    ir::Program p = makeWorkload(seed);
    injector.arm({.seed = seed,
                  .fireAtSite = static_cast<int>(seed % 6),
                  .mode = support::FaultMode::Throw});
    opt::OptimizeResult result =
        opt::optimizeProgramChecked(p, {.maxIterations = 2});
    const std::string firedAt = injector.firedAt();
    injector.disarm();

    if (firedAt.empty()) {
      EXPECT_TRUE(result.ok()) << "seed " << seed;
      continue;
    }
    ++fired;
    ASSERT_FALSE(result.ok()) << "seed " << seed;
    EXPECT_EQ(result.status.fault().kind, FaultKind::InvariantViolation);
    EXPECT_EQ(result.status.fault().pass, firedAt) << "seed " << seed;
  }
  EXPECT_GT(fired, 30);
}

TEST(FaultInjection, DirectCorruptionIsCaughtByTryAnalyze) {
  int corrupted = 0;
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    ir::Program p = makeWorkload(seed);
    const std::string what = support::corruptProgram(p, seed);
    if (what.empty()) continue;
    ++corrupted;
    Expected<driver::Compilation> comp = driver::tryAnalyze(p);
    EXPECT_FALSE(comp.ok()) << "seed " << seed << ": corruption '" << what
                            << "' slipped through";
    if (!comp.ok()) {
      EXPECT_EQ(comp.fault().kind, FaultKind::VerifyError) << "seed " << seed;
    }
  }
  // corruptProgram guarantees detectability; it must also nearly always
  // find an applicable site on generator workloads.
  EXPECT_GT(corrupted, 110);
}

}  // namespace
}  // namespace cssame
