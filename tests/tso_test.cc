// The TSO weak-memory layer: grammar, store-buffer machine semantics,
// the static pending-store-window analysis, and the SC-vs-TSO explorer
// oracle that cross-validates it.
//
// The contract under test (src/sanalysis/tso.h): an ad-hoc mutual
// exclusion protocol built from plain loads and stores is flagged
// (MutualExclusionNotJustifiedUnderTSO) exactly when a later shared load
// can complete while an earlier plain store of the same thread is still
// sitting in its store buffer — and the dynamic witness is the explorer
// run twice, where the critical-section variable joins racedVars only
// under MemoryModel::TSO. Fence-repaired variants must be clean under
// both models and must not trip the FenceRedundant lint.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/driver/pipeline.h"
#include "src/driver/runner.h"
#include "src/interp/explore.h"
#include "src/interp/machine.h"
#include "src/ir/printer.h"
#include "src/parser/parser.h"
#include "src/sanalysis/tso.h"

namespace cssame::sanalysis {
namespace {

// --- shared protocol sources ----------------------------------------

/// Peterson's algorithm from plain loads/stores: correct under SC,
/// broken under TSO (both entry stores can be buffered past the spin
/// reads — the store-buffering reordering).
constexpr const char* kPeterson = R"(
  int flag0, flag1, turn, data;
  cobegin {
    thread {
      flag0 = 1;
      turn = 1;
      while (flag1 == 1 && turn == 1) { }
      data = data + 1;
      flag0 = 0;
    }
    thread {
      flag1 = 1;
      turn = 0;
      while (flag0 == 1 && turn == 0) { }
      data = data + 1;
      flag1 = 0;
    }
  }
  print(data);
)";

/// Same protocol with the store->load fence each arm needs under TSO.
constexpr const char* kPetersonFenced = R"(
  int flag0, flag1, turn, data;
  cobegin {
    thread {
      flag0 = 1;
      turn = 1;
      fence;
      while (flag1 == 1 && turn == 1) { }
      data = data + 1;
      flag0 = 0;
    }
    thread {
      flag1 = 1;
      turn = 0;
      fence;
      while (flag0 == 1 && turn == 0) { }
      data = data + 1;
      flag1 = 0;
    }
  }
  print(data);
)";

/// The store-buffering litmus: r0 == r1 == 0 is unreachable under SC
/// and reachable under TSO.
constexpr const char* kStoreBuffering = R"(
  int x, y, r0, r1;
  cobegin {
    thread { x = 1; r0 = y; }
    thread { y = 1; r1 = x; }
  }
  print(r0); print(r1);
)";

constexpr const char* kStoreBufferingFenced = R"(
  int x, y, r0, r1;
  cobegin {
    thread { x = 1; fence; r0 = y; }
    thread { y = 1; fence; r1 = x; }
  }
  print(r0); print(r1);
)";

TsoReport analyzeTso(const char* src, DiagEngine* out = nullptr) {
  ir::Program p = parser::parseOrDie(src);
  driver::Compilation c = driver::analyze(p, {.warnings = false});
  DiagEngine diag;
  TsoReport r = runTso(c, diag);
  if (out != nullptr) *out = diag;
  return r;
}

interp::ExploreResult explore(const char* src, support::MemoryModel model) {
  interp::ExploreOptions opts;
  opts.maxSteps = 1u << 20;
  opts.maxStates = 1u << 17;
  opts.detectRaces = true;
  opts.model = model;
  return interp::exploreAllSchedules(parser::parseOrDie(src), opts);
}

// --- grammar: fence / atomic_store / atomic_load --------------------

TEST(TsoGrammar, FenceAndAtomicsRoundTripThroughThePrinter) {
  const char* src = R"(
    int x, y;
    cobegin {
      thread {
        atomic_store(x, y + 1);
        fence;
        y = atomic_load(x);
      }
      thread { atomic_store(y, 2); }
    }
    print(x); print(y);
  )";
  ir::Program p = parser::parseOrDie(src);
  const std::string printed = ir::printProgram(p);
  // The printed form must mention all three constructs...
  EXPECT_NE(printed.find("fence;"), std::string::npos) << printed;
  EXPECT_NE(printed.find("atomic_store(x, "), std::string::npos) << printed;
  EXPECT_NE(printed.find("y = atomic_load(x);"), std::string::npos) << printed;
  // ...and be a fixed point: parse(print(p)) prints identically.
  ir::Program reparsed = parser::parseOrDie(printed);
  EXPECT_EQ(ir::printProgram(reparsed), printed);
}

TEST(TsoGrammar, AtomicStatementsAreAtomicAssignsInTheIr) {
  ir::Program p = parser::parseOrDie(R"(
    int x, y;
    atomic_store(x, 1);
    y = atomic_load(x);
    x = 2;
  )");
  std::vector<bool> atomics;
  ir::forEachStmt(p.body, [&](ir::Stmt& s) {
    if (s.kind == ir::StmtKind::Assign) atomics.push_back(s.atomic);
  });
  EXPECT_EQ(atomics, (std::vector<bool>{true, true, false}));
}

TEST(TsoGrammar, MalformedAtomicsAreSyntaxErrors) {
  EXPECT_FALSE(parser::parseChecked("int x; x = atomic_load(1);").ok());
  EXPECT_FALSE(parser::parseChecked("int x; atomic_store(1, x);").ok());
  EXPECT_FALSE(parser::parseChecked("int x; atomic_store(x);").ok());
  EXPECT_FALSE(parser::parseChecked("fence(x);").ok());
  // The happy paths stay happy.
  EXPECT_TRUE(parser::parseChecked("int x; fence; atomic_store(x, 1);").ok());
}

// --- machine: store buffers, forwarding, fence gating ---------------

/// Drives `prog` (one cobegin with one thread) up to the point where the
/// child thread is spawned, returning the machine.
interp::Machine spawned(const ir::Program& prog, support::MemoryModel m) {
  interp::Machine machine(prog, m);
  machine.perform({0, false});  // main thread executes the cobegin
  return machine;
}

TEST(TsoMachine, BufferedStoreIsInvisibleUntilFlushed) {
  const ir::Program prog = parser::parseOrDie(R"(
    int x;
    cobegin { thread { x = 7; } }
  )");
  const SymbolId x = prog.symbols.lookup("x");
  ASSERT_TRUE(x.valid());

  interp::Machine m = spawned(prog, support::MemoryModel::TSO);
  m.perform({1, false});  // the store issues into thread 1's buffer
  EXPECT_EQ(m.valueOf(x), 0) << "buffered store leaked into memory";
  ASSERT_EQ(m.storeBufOf(1).size(), 1u);
  EXPECT_EQ(m.storeBufOf(1).front().first, x.index());
  EXPECT_EQ(m.storeBufOf(1).front().second, 7);

  m.perform({1, true});  // flush commits it
  EXPECT_EQ(m.valueOf(x), 7);
  EXPECT_TRUE(m.storeBufOf(1).empty());
}

TEST(TsoMachine, LoadsForwardFromOwnBufferNewestFirst) {
  const ir::Program prog = parser::parseOrDie(R"(
    int x, r;
    cobegin { thread { x = 1; x = 2; r = x; } }
  )");
  const SymbolId x = prog.symbols.lookup("x");
  const SymbolId r = prog.symbols.lookup("r");

  interp::Machine m = spawned(prog, support::MemoryModel::TSO);
  m.perform({1, false});  // x = 1 (buffered)
  m.perform({1, false});  // x = 2 (buffered behind it)
  ASSERT_EQ(m.storeBufOf(1).size(), 2u);
  m.perform({1, false});  // r = x must forward the *newest* entry
  // r is itself shared here, so its store is buffered too: newest entry.
  ASSERT_EQ(m.storeBufOf(1).size(), 3u);
  EXPECT_EQ(m.storeBufOf(1).back().first, r.index());
  EXPECT_EQ(m.storeBufOf(1).back().second, 2);
  EXPECT_EQ(m.valueOf(x), 0);  // nothing committed yet
}

TEST(TsoMachine, FlushesCommitInFifoOrder) {
  const ir::Program prog = parser::parseOrDie(R"(
    int x;
    cobegin { thread { x = 1; x = 2; } }
  )");
  const SymbolId x = prog.symbols.lookup("x");

  interp::Machine m = spawned(prog, support::MemoryModel::TSO);
  m.perform({1, false});
  m.perform({1, false});
  m.perform({1, true});  // oldest first: x = 1
  EXPECT_EQ(m.valueOf(x), 1);
  m.perform({1, true});
  EXPECT_EQ(m.valueOf(x), 2);
}

TEST(TsoMachine, FenceBlocksUntilOwnBufferDrains) {
  const ir::Program prog = parser::parseOrDie(R"(
    int x, y;
    cobegin { thread { x = 1; fence; y = 1; } }
  )");
  interp::Machine m = spawned(prog, support::MemoryModel::TSO);
  m.perform({1, false});  // x = 1 buffered; next stmt is the fence

  // With a pending store, the fence cannot run: the only enabled action
  // for thread 1 is the flush.
  std::vector<interp::Machine::Action> ready = m.readyActions();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready.front().thread, 1u);
  EXPECT_TRUE(ready.front().flush);

  m.perform({1, true});
  ready = m.readyActions();  // drained: the program step is enabled again
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_FALSE(ready.front().flush);
}

TEST(TsoMachine, AtomicStoreCommitsImmediately) {
  const ir::Program prog = parser::parseOrDie(R"(
    int x;
    cobegin { thread { atomic_store(x, 5); } }
  )");
  const SymbolId x = prog.symbols.lookup("x");
  interp::Machine m = spawned(prog, support::MemoryModel::TSO);
  m.perform({1, false});
  EXPECT_EQ(m.valueOf(x), 5);
  EXPECT_TRUE(m.storeBufOf(1).empty());
}

TEST(TsoMachine, StateHashSeesBufferedStores) {
  // The buffered and the flushed state can have identical memory (a
  // store writes the value the cell already holds); the fingerprints
  // must still differ, or the explorer would merge states that diverge
  // later. After the flush, the TSO state must hash exactly like the SC
  // machine at the same program point — same program object, so the
  // frame pointers the hash mixes are identical.
  const ir::Program prog = parser::parseOrDie(R"(
    int x;
    cobegin { thread { x = 0; } }
  )");
  interp::Machine tso = spawned(prog, support::MemoryModel::TSO);
  interp::Machine sc = spawned(prog, support::MemoryModel::SC);
  tso.perform({1, false});
  sc.perform({1, false});

  // x = 0 stored into memory holding 0: memory identical, buffer not.
  EXPECT_FALSE(tso.stateHash128() == sc.stateHash128());
  EXPECT_NE(tso.stateHash(), sc.stateHash());

  tso.perform({1, true});
  EXPECT_TRUE(tso.stateHash128() == sc.stateHash128());
  EXPECT_EQ(tso.stateHash(), sc.stateHash());
}

// --- explorer: the SC-vs-TSO oracle ---------------------------------

TEST(TsoExplore, StoreBufferingLitmusReachesZeroZeroOnlyUnderTso) {
  const interp::ExploreResult sc =
      explore(kStoreBuffering, support::MemoryModel::SC);
  const interp::ExploreResult tso =
      explore(kStoreBuffering, support::MemoryModel::TSO);
  ASSERT_TRUE(sc.complete);
  ASSERT_TRUE(tso.complete);

  const std::vector<long long> zeroZero{0, 0};
  EXPECT_EQ(sc.outputs.count(zeroZero), 0u);
  EXPECT_EQ(tso.outputs.count(zeroZero), 1u);
  // TSO only adds behaviors, never removes any.
  for (const auto& out : sc.outputs)
    EXPECT_EQ(tso.outputs.count(out), 1u) << "SC output lost under TSO";
}

TEST(TsoExplore, FencedStoreBufferingIsSequentiallyConsistent) {
  const interp::ExploreResult sc =
      explore(kStoreBufferingFenced, support::MemoryModel::SC);
  const interp::ExploreResult tso =
      explore(kStoreBufferingFenced, support::MemoryModel::TSO);
  ASSERT_TRUE(sc.complete);
  ASSERT_TRUE(tso.complete);
  EXPECT_EQ(tso.outputs, sc.outputs);
}

TEST(TsoExplore, PetersonLosesMutualExclusionOnlyUnderTso) {
  const ir::Program prog = parser::parseOrDie(kPeterson);
  const SymbolId data = prog.symbols.lookup("data");
  ASSERT_TRUE(data.valid());

  const interp::ExploreResult sc = explore(kPeterson, support::MemoryModel::SC);
  const interp::ExploreResult tso =
      explore(kPeterson, support::MemoryModel::TSO);
  ASSERT_TRUE(sc.complete);
  ASSERT_TRUE(tso.complete);

  // Under SC the protocol holds: the flags race benignly but the
  // critical-section variable never has two co-enabled accesses, and the
  // counter always reaches 2.
  EXPECT_EQ(sc.racedVars.count(data), 0u);
  EXPECT_EQ(sc.outputs, (std::set<std::vector<long long>>{{2}}));

  // Under TSO both threads can pass the spin with their entry stores
  // still buffered: a state with both `data = data + 1` co-enabled (the
  // dynamic witness runTso predicts), and the lost update prints 1.
  EXPECT_EQ(tso.racedVars.count(data), 1u);
  EXPECT_EQ(tso.outputs.count({1}), 1u);
}

TEST(TsoExplore, FencedPetersonIsCorrectUnderBothModels) {
  const ir::Program prog = parser::parseOrDie(kPetersonFenced);
  const SymbolId data = prog.symbols.lookup("data");

  for (support::MemoryModel model :
       {support::MemoryModel::SC, support::MemoryModel::TSO}) {
    SCOPED_TRACE(support::memoryModelName(model));
    const interp::ExploreResult r = explore(kPetersonFenced, model);
    ASSERT_TRUE(r.complete);
    EXPECT_EQ(r.racedVars.count(data), 0u);
    EXPECT_EQ(r.outputs, (std::set<std::vector<long long>>{{2}}));
  }
}

// --- the static pass ------------------------------------------------

TEST(TsoStatic, PetersonIsFlaggedWithATwoSiteWitness) {
  DiagEngine diag;
  const TsoReport r = analyzeTso(kPeterson, &diag);
  ASSERT_GE(r.notJustified, 1u);
  EXPECT_EQ(r.redundantFences, 0u);
  EXPECT_EQ(diag.countOf(DiagCode::MutualExclusionNotJustifiedUnderTSO),
            r.notJustified);
  ASSERT_EQ(r.witnesses.size(), r.notJustified);
  for (const TsoWitness& w : r.witnesses) {
    EXPECT_TRUE(w.storeLoc.valid());
    EXPECT_TRUE(w.loadLoc.valid());
    EXPECT_NE(w.storeVar, w.loadVar) << "same-variable pairs forward, "
                                        "never reorder";
  }
  // The protocol variables are exactly what the reordering breaks.
  const ir::Program p = parser::parseOrDie(kPeterson);
  EXPECT_EQ(r.reorderedStores.count(p.symbols.lookup("flag0")) +
                r.reorderedStores.count(p.symbols.lookup("flag1")) +
                r.reorderedStores.count(p.symbols.lookup("turn")),
            r.reorderedStores.size());
  EXPECT_EQ(r.reorderedStores.count(p.symbols.lookup("data")), 0u);
}

TEST(TsoStatic, FencedPetersonIsCleanWithNoRedundantFences) {
  DiagEngine diag;
  const TsoReport r = analyzeTso(kPetersonFenced, &diag);
  EXPECT_EQ(r.notJustified, 0u);
  // Both fences are load-bearing: each orders a racy store before racy
  // spin reads.
  EXPECT_EQ(r.redundantFences, 0u);
  EXPECT_EQ(r.totalFindings(), 0u);
  EXPECT_EQ(diag.diagnostics().size(), 0u);
}

TEST(TsoStatic, StoreBufferingLitmusIsFlaggedAndItsFenceFixesIt) {
  EXPECT_GE(analyzeTso(kStoreBuffering).notJustified, 2u)
      << "both arms carry a reorderable store/load pair";
  const TsoReport fenced = analyzeTso(kStoreBufferingFenced);
  EXPECT_EQ(fenced.totalFindings(), 0u);
}

TEST(TsoStatic, LockBasedMutualExclusionIsNotFlagged) {
  // Locked operations drain the buffer; csan's SC verdict stays sound.
  const TsoReport r = analyzeTso(R"(
    int a, b; lock L;
    cobegin {
      thread { lock(L); a = 1; b = a + b; unlock(L); }
      thread { lock(L); b = 2; a = a + 1; unlock(L); }
    }
    print(a); print(b);
  )");
  EXPECT_EQ(r.totalFindings(), 0u);
}

TEST(TsoStatic, AtomicProtocolIsNotFlagged) {
  // atomic_store never enters the buffer and atomic_load waits for it to
  // drain, so an all-atomic flag protocol has no reorderable pair.
  const TsoReport r = analyzeTso(R"(
    int flag, data;
    cobegin {
      thread { data = 1; atomic_store(flag, 1); }
      thread {
        int seen;
        seen = atomic_load(flag);
        while (seen == 0) { seen = atomic_load(flag); }
        print(data);
      }
    }
  )");
  EXPECT_EQ(r.notJustified, 0u);
}

TEST(TsoStatic, PrivateAndSequentialStoresDoNotPair) {
  // Pending windows only track *shared* stores, and both ends of a pair
  // must be racy: a single-threaded program (or private accumulators)
  // can never produce a witness.
  const TsoReport seq = analyzeTso(R"(
    int x, y;
    x = 1;
    y = x + 1;
    print(y);
  )");
  EXPECT_EQ(seq.totalFindings(), 0u);

  const TsoReport priv = analyzeTso(R"(
    int s;
    cobegin {
      thread { int p; p = 1; p = p + 1; s = s + p; }
      thread { int q; q = 2; print(q); }
    }
  )");
  EXPECT_EQ(priv.notJustified, 0u);
}

TEST(TsoStatic, FenceWithEmptyWindowIsRedundant) {
  DiagEngine diag;
  const TsoReport r = analyzeTso(R"(
    int a;
    cobegin {
      thread { fence; a = 1; }
      thread { a = 2; }
    }
    print(a);
  )", &diag);
  EXPECT_EQ(r.redundantFences, 1u);
  EXPECT_EQ(diag.countOf(DiagCode::FenceRedundant), 1u);
}

TEST(TsoStatic, FenceOrderingOnlyUnobservableStoresIsRedundant) {
  // `a` is touched by one thread only: the buffered store can never be
  // observed out of order, so the fence draining it orders nothing.
  const TsoReport r = analyzeTso(R"(
    int a, b;
    cobegin {
      thread { a = 1; fence; b = b + 1; }
      thread { b = b + 2; }
    }
    print(a); print(b);
  )");
  EXPECT_EQ(r.redundantFences, 1u);
  EXPECT_EQ(r.notJustified, 0u);
}

TEST(TsoStatic, OptionsGateEachCheck) {
  ir::Program p = parser::parseOrDie(kPeterson);
  driver::Compilation c = driver::analyze(p, {.warnings = false});
  DiagEngine diag;
  const TsoReport off = runTso(c, diag, {.notJustified = false});
  EXPECT_EQ(off.notJustified, 0u);
  EXPECT_EQ(diag.countOf(DiagCode::MutualExclusionNotJustifiedUnderTSO), 0u);
}

// --- runner integration ---------------------------------------------

TEST(TsoRunner, TsoFlagRendersDiagnosticsAndSummary) {
  driver::RunOptions o;
  o.doTso = true;
  const driver::RunOutput broken =
      driver::runSource(kPeterson, "peterson.cp", o);
  EXPECT_NE(broken.err.find("mutual-exclusion-not-justified-under-tso"),
            std::string::npos)
      << broken.err;
  EXPECT_NE(broken.err.find("tso:"), std::string::npos);

  const driver::RunOutput fenced =
      driver::runSource(kPetersonFenced, "peterson_fenced.cp", o);
  EXPECT_EQ(fenced.err.find("mutual-exclusion-not-justified-under-tso"),
            std::string::npos)
      << fenced.err;
  EXPECT_NE(fenced.err.find("tso: 0 finding(s)"), std::string::npos)
      << fenced.err;
}

TEST(TsoRunner, CacheKeySeparatesModelsAndPasses) {
  driver::RunOptions sc;
  driver::RunOptions tso = sc;
  tso.memoryModel = support::MemoryModel::TSO;
  EXPECT_NE(sc.cacheKey(), tso.cacheKey());

  driver::RunOptions withPass = sc;
  withPass.doTso = true;
  EXPECT_NE(sc.cacheKey(), withPass.cacheKey());
}

TEST(TsoRunner, SeededTsoRunIsDeterministic) {
  driver::RunOptions o;
  o.doRun = true;
  o.seed = 42;
  o.memoryModel = support::MemoryModel::TSO;
  const driver::RunOutput a = driver::runSource(kPeterson, "p.cp", o);
  const driver::RunOutput b = driver::runSource(kPeterson, "p.cp", o);
  EXPECT_EQ(a.out, b.out);
  EXPECT_EQ(a.err, b.err);
  EXPECT_EQ(a.code, b.code);
}

}  // namespace
}  // namespace cssame::sanalysis
