// Unit tests for the algebraic simplification pass.
#include <gtest/gtest.h>

#include "src/interp/interp.h"
#include "src/ir/printer.h"
#include "src/ir/verify.h"
#include "src/opt/optimize.h"
#include "src/opt/simplify.h"
#include "src/parser/parser.h"

namespace cssame::opt {
namespace {

std::string simplify(const char* src, std::size_t* rewrites = nullptr) {
  ir::Program prog = parser::parseOrDie(src);
  SimplifyStats stats = simplifyExpressions(prog);
  if (rewrites != nullptr) *rewrites = stats.rewrites;
  EXPECT_TRUE(ir::verify(prog).empty());
  return ir::printProgram(prog);
}

TEST(Simplify, AdditiveIdentities) {
  EXPECT_NE(simplify("int x, y; y = x + 0;").find("y = x;"),
            std::string::npos);
  EXPECT_NE(simplify("int x, y; y = 0 + x;").find("y = x;"),
            std::string::npos);
  EXPECT_NE(simplify("int x, y; y = x - 0;").find("y = x;"),
            std::string::npos);
}

TEST(Simplify, MultiplicativeIdentities) {
  EXPECT_NE(simplify("int x, y; y = x * 1;").find("y = x;"),
            std::string::npos);
  EXPECT_NE(simplify("int x, y; y = 1 * x;").find("y = x;"),
            std::string::npos);
  EXPECT_NE(simplify("int x, y; y = x / 1;").find("y = x;"),
            std::string::npos);
}

TEST(Simplify, Annihilators) {
  EXPECT_NE(simplify("int x, y; y = x * 0;").find("y = 0;"),
            std::string::npos);
  EXPECT_NE(simplify("int x, y; y = 0 / x;").find("y = 0;"),
            std::string::npos);
  EXPECT_NE(simplify("int x, y; y = x % 1;").find("y = 0;"),
            std::string::npos);
  EXPECT_NE(simplify("int x, y; y = x && 0;").find("y = 0;"),
            std::string::npos);
  EXPECT_NE(simplify("int x, y; y = 1 || x;").find("y = 1;"),
            std::string::npos);
}

TEST(Simplify, SelfComparisons) {
  // Statement evaluation is atomic in our model, so both reads of x in
  // one expression see the same value even under concurrency.
  EXPECT_NE(simplify("int x, y; y = x - x;").find("y = 0;"),
            std::string::npos);
  EXPECT_NE(simplify("int x, y; y = x == x;").find("y = 1;"),
            std::string::npos);
  EXPECT_NE(simplify("int x, y; y = x <= x;").find("y = 1;"),
            std::string::npos);
  EXPECT_NE(simplify("int x, y; y = x < x;").find("y = 0;"),
            std::string::npos);
  EXPECT_NE(simplify("int x, y; y = x % x;").find("y = 0;"),
            std::string::npos);
}

TEST(Simplify, DoubleNegation) {
  EXPECT_NE(simplify("int x, y; y = --x;").find("y = x;"),
            std::string::npos);
}

TEST(Simplify, CallsBlockOperandDropping) {
  // f(x) may have side effects: x * 0 with x = f(...) must NOT fold.
  std::size_t rewrites = 0;
  const std::string text =
      simplify("int y; y = f(1) * 0;", &rewrites);
  EXPECT_NE(text.find("y = f(1) * 0;"), std::string::npos) << text;
  EXPECT_EQ(rewrites, 0u);
  // But identities that KEEP the call are fine.
  EXPECT_NE(simplify("int y; y = f(1) + 0;").find("y = f(1);"),
            std::string::npos);
}

TEST(Simplify, CascadesToFixpoint) {
  std::size_t rewrites = 0;
  const std::string text =
      simplify("int x, y; y = (x * 1 + 0) - (x + 0);", &rewrites);
  EXPECT_NE(text.find("y = 0;"), std::string::npos) << text;
  EXPECT_GE(rewrites, 3u);
}

TEST(Simplify, ConditionSimplificationEnablesCscc) {
  ir::Program prog = parser::parseOrDie(R"(
    int x, a, b;
    x = f(0);
    if (x != x) { a = 1; } else { a = 2; }
    print(a);
  )");
  opt::optimizeProgram(prog);
  const std::string text = ir::printProgram(prog);
  EXPECT_EQ(text.find("if"), std::string::npos) << text;
  EXPECT_NE(text.find("print(2)"), std::string::npos) << text;
}

TEST(Simplify, SemanticsPreserved) {
  const char* src = R"(
    int x, y, z;
    x = 7;
    y = (x + 0) * 1 - (x - x) + x % x + (x == x);
    z = y * 0 + y / 1;
    print(y);
    print(z);
  )";
  ir::Program a = parser::parseOrDie(src);
  ir::Program b = parser::parseOrDie(src);
  simplifyExpressions(b);
  EXPECT_EQ(interp::run(a).output, interp::run(b).output);
}

TEST(Simplify, IdempotentOnFixpoint) {
  ir::Program prog = parser::parseOrDie("int x, y; y = x + 0;");
  simplifyExpressions(prog);
  SimplifyStats second = simplifyExpressions(prog);
  EXPECT_EQ(second.rewrites, 0u);
}

TEST(Simplify, NestedExpressionsInAllStatementKinds) {
  const std::string text = simplify(R"(
    int x, y;
    if (x * 1 > 0) { y = 1; }
    while (y - 0 < 3) { y = y + 1; }
    print(x + 0);
    f(y * 1);
  )");
  EXPECT_NE(text.find("if (x > 0)"), std::string::npos) << text;
  EXPECT_NE(text.find("while (y < 3)"), std::string::npos) << text;
  EXPECT_NE(text.find("print(x)"), std::string::npos) << text;
  EXPECT_NE(text.find("f(y)"), std::string::npos) << text;
}

}  // namespace
}  // namespace cssame::opt
